#include <gtest/gtest.h>

#include <set>

#include "core/sbf_algebra.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

SbfOptions MakeOptions(uint64_t m, uint32_t k, uint64_t seed) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  return options;
}

TEST(UnionTest, EquivalentToInsertingBothStreams) {
  const auto options = MakeOptions(3000, 5, 3);
  SpectralBloomFilter a(options), b(options), reference(options);
  const Multiset left = MakeZipfMultiset(200, 4000, 0.7, 5);
  const Multiset right = MakeZipfMultiset(300, 6000, 0.4, 7);
  for (uint64_t key : left.stream) {
    a.Insert(key);
    reference.Insert(key);
  }
  for (uint64_t key : right.stream) {
    b.Insert(key);
    reference.Insert(key);
  }
  ASSERT_TRUE(UnionInto(&a, b).ok());
  for (uint64_t i = 0; i < a.m(); ++i) {
    ASSERT_EQ(a.counters().Get(i), reference.counters().Get(i)) << i;
  }
  EXPECT_EQ(a.total_items(), reference.total_items());
}

TEST(UnionTest, PartitionedRelationMergesExactly) {
  // The distributed scenario: a relation partitioned over 4 sites, each
  // builds an SBF; the union answers queries over the whole relation.
  const auto options = MakeOptions(5000, 4, 11);
  const Multiset data = MakeZipfMultiset(300, 8000, 1.0, 13);
  SpectralBloomFilter merged(options);
  std::vector<SpectralBloomFilter> sites(4, SpectralBloomFilter(options));
  for (size_t i = 0; i < data.stream.size(); ++i) {
    sites[i % 4].Insert(data.stream[i]);
  }
  for (const auto& site : sites) {
    ASSERT_TRUE(UnionInto(&merged, site).ok());
  }
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_GE(merged.Estimate(data.keys[i]), data.freqs[i]);
  }
}

TEST(UnionTest, RejectsIncompatibleFilters) {
  SpectralBloomFilter a(MakeOptions(1000, 5, 1));
  SpectralBloomFilter b(MakeOptions(1000, 5, 2));  // different seed
  EXPECT_FALSE(UnionInto(&a, b).ok());
  SpectralBloomFilter c(MakeOptions(1001, 5, 1));  // different m
  EXPECT_FALSE(UnionInto(&a, c).ok());
  SpectralBloomFilter d(MakeOptions(1000, 4, 1));  // different k
  EXPECT_FALSE(UnionInto(&a, d).ok());
}

TEST(MultiplyTest, UpperBoundsJoinProducts) {
  const auto options = MakeOptions(4000, 5, 17);
  SpectralBloomFilter a(options), b(options);
  // Keys 1..100 in both sides with different multiplicities.
  for (uint64_t key = 1; key <= 100; ++key) {
    a.Insert(key, key % 7 + 1);
    b.Insert(key, key % 5 + 1);
  }
  // Keys 200..250 only in a.
  for (uint64_t key = 200; key <= 250; ++key) a.Insert(key, 3);

  auto product = Multiply(a, b);
  ASSERT_TRUE(product.ok());
  for (uint64_t key = 1; key <= 100; ++key) {
    const uint64_t expected = (key % 7 + 1) * (key % 5 + 1);
    ASSERT_GE(product.value().Estimate(key), expected) << key;
  }
}

TEST(MultiplyTest, DisjointSetsYieldZeroAlmostEverywhere) {
  const auto options = MakeOptions(20000, 5, 19);
  SpectralBloomFilter a(options), b(options);
  for (uint64_t key = 0; key < 500; ++key) a.Insert(key);
  for (uint64_t key = 10000; key < 10500; ++key) b.Insert(key);
  auto product = Multiply(a, b);
  ASSERT_TRUE(product.ok());
  size_t nonzero = 0;
  for (uint64_t key = 0; key < 500; ++key) {
    nonzero += (product.value().Estimate(key) > 0);
  }
  EXPECT_LT(nonzero, 5u);
}

TEST(MultiplyTest, RejectsIncompatibleFilters) {
  SpectralBloomFilter a(MakeOptions(1000, 5, 1));
  SpectralBloomFilter b(MakeOptions(2000, 5, 1));
  EXPECT_FALSE(Multiply(a, b).ok());
}

TEST(MultiplyTest, ExactOnLightLoad) {
  const auto options = MakeOptions(100000, 5, 23);
  SpectralBloomFilter a(options), b(options);
  a.Insert(7, 6);
  b.Insert(7, 9);
  a.Insert(8, 2);  // not in b
  auto product = Multiply(a, b);
  ASSERT_TRUE(product.ok());
  EXPECT_EQ(product.value().Estimate(7), 54u);
  EXPECT_EQ(product.value().Estimate(8), 0u);
}

TEST(FilterByThresholdTest, OneSidedSelection) {
  const auto options = MakeOptions(3000, 5, 29);
  SpectralBloomFilter filter(options);
  const Multiset data = MakeZipfMultiset(400, 10000, 1.0, 31);
  for (uint64_t key : data.stream) filter.Insert(key);

  const uint64_t threshold = 50;
  const auto passing = FilterByThreshold(filter, data.keys, threshold);

  // Every truly heavy key must appear.
  std::set<uint64_t> passing_set(passing.begin(), passing.end());
  for (size_t i = 0; i < data.keys.size(); ++i) {
    if (data.freqs[i] >= threshold) {
      ASSERT_TRUE(passing_set.contains(data.keys[i])) << data.keys[i];
    }
  }
  // And the set should not be wildly larger than the true heavy set.
  size_t truly_heavy = 0;
  for (uint64_t f : data.freqs) truly_heavy += (f >= threshold);
  EXPECT_LE(passing.size(), truly_heavy + data.keys.size() / 10);
}

}  // namespace
}  // namespace sbf
