// SIMD kernel differential suite: every entry point of every supported
// ISA variant must be bit-identical to the generic scalar reference —
// including the accept/reject decision of the mutating kernels, which is
// part of the saturation contract (core/simd_kernels.h). On top of the
// kernel-level checks, whole-filter differentials pin the batched SIMD
// pipelines of BlockedSbf and SpectralBloomFilter to their scalar paths
// via the SBF_FORCE_ISA test hook (ForceIsa), covering unaligned tails,
// duplicate-heavy streams and counters at/near saturation.
//
// scripts/sbf_lint.py's simd-differential rule checks that every kernel
// field of simd::BlockKernels is exercised by name in this file.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/blocked_sbf.h"
#include "core/simd_kernels.h"
#include "core/spectral_bloom_filter.h"
#include "util/random.h"

namespace sbf {
namespace {

using simd::BlockKernels;
using simd::Isa;

// Restores the dispatch table after each test (ForceIsa is process-global).
class SimdDifferentialTest : public ::testing::Test {
 protected:
  ~SimdDifferentialTest() override { simd::ForceIsa(simd::BestSupportedIsa()); }
};

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas;
  for (Isa isa : {Isa::kGeneric, Isa::kSse2, Isa::kAvx2}) {
    if (simd::IsaSupported(isa)) isas.push_back(isa);
  }
  return isas;
}

const BlockKernels& Table(Isa isa) {
  switch (isa) {
    case Isa::kSse2:
      return *simd::internal::Sse2KernelTable();
    case Isa::kAvx2:
      return *simd::internal::Avx2KernelTable();
    default:
      return *simd::internal::GenericKernelTable();
  }
}

// One random kernel scenario: a 64-byte block, k odd alphas, a mixed key.
struct Scenario {
  uint64_t block[8];
  uint64_t alphas[HashFamily::kMaxK];
  uint64_t mixed;
  uint32_t k;
};

Scenario RandomScenario(Xoshiro256& rng, bool near_saturation_64,
                        bool near_saturation_32) {
  Scenario s;
  for (uint64_t& w : s.block) {
    w = rng.Next();
    if (near_saturation_64 && rng.UniformInt(2) == 0) {
      w = ~uint64_t{0} - rng.UniformInt(4);
    }
    if (near_saturation_32) {
      // Drive individual 32-bit lanes to/near their max.
      for (int half = 0; half < 2; ++half) {
        if (rng.UniformInt(3) == 0) {
          const uint64_t lane = 0xFFFFFFFFull - rng.UniformInt(4);
          w = (w & ~(0xFFFFFFFFull << (32 * half))) | (lane << (32 * half));
        }
      }
    }
  }
  // k beyond the lane count forces duplicate in-block offsets, the case
  // whose multiplicity accounting the add kernels must get right.
  s.k = 1 + static_cast<uint32_t>(rng.UniformInt(HashFamily::kMaxK));
  for (uint32_t j = 0; j < s.k; ++j) s.alphas[j] = rng.Next() | 1;
  s.mixed = rng.Next();
  return s;
}

uint64_t RandomCount(Xoshiro256& rng) {
  switch (rng.UniformInt(6)) {
    case 0:
      return 1;
    case 1:
      return 1 + rng.UniformInt(1000);
    case 2:  // straddles the add32 safe-count bound
      return simd::kSimdSafeCount32 - 2 + rng.UniformInt(5);
    case 3:  // straddles the add64 safe-count bound
      return simd::kSimdSafeCount64 - 2 + rng.UniformInt(5);
    case 4:  // large enough to wrap most 64-bit lift targets
      return ~uint64_t{0} - rng.UniformInt(1000);
    default:
      return rng.Next();
  }
}

TEST_F(SimdDifferentialTest, BlockedMinMatchesGeneric) {
  const BlockKernels& ref = *simd::internal::GenericKernelTable();
  Xoshiro256 rng(101);
  for (Isa isa : SupportedIsas()) {
    const BlockKernels& kn = Table(isa);
    for (int trial = 0; trial < 4000; ++trial) {
      const Scenario s =
          RandomScenario(rng, trial % 3 == 0, trial % 5 == 0);
      ASSERT_EQ(kn.blocked_min64(s.block, s.alphas, s.k, s.mixed),
                ref.blocked_min64(s.block, s.alphas, s.k, s.mixed))
          << simd::IsaName(isa) << " trial " << trial;
      ASSERT_EQ(kn.blocked_min32(s.block, s.alphas, s.k, s.mixed),
                ref.blocked_min32(s.block, s.alphas, s.k, s.mixed))
          << simd::IsaName(isa) << " trial " << trial;
    }
  }
}

// Runs one mutating kernel against the generic reference on the same
// scenario: return codes must agree, accepted blocks must be identical,
// and a rejecting kernel must leave its block untouched.
template <typename Field>
void CheckMutatingKernel(const BlockKernels& kn, const BlockKernels& ref,
                         Field field, const Scenario& s, uint64_t count,
                         const char* what) {
  uint64_t mine[8];
  uint64_t theirs[8];
  std::memcpy(mine, s.block, sizeof(mine));
  std::memcpy(theirs, s.block, sizeof(theirs));
  const int got = (kn.*field)(mine, s.alphas, s.k, s.mixed, count);
  const int want = (ref.*field)(theirs, s.alphas, s.k, s.mixed, count);
  ASSERT_EQ(got, want) << what << ": accept/reject diverged (count=" << count
                       << ")";
  if (want == 0) {
    // Rejected: the contract says nothing may have been written.
    ASSERT_EQ(std::memcmp(mine, s.block, sizeof(mine)), 0)
        << what << ": rejecting kernel wrote to the block";
  }
  ASSERT_EQ(std::memcmp(mine, theirs, sizeof(mine)), 0)
      << what << ": block contents diverged (count=" << count << ")";
}

TEST_F(SimdDifferentialTest, BlockedAddMatchesGeneric) {
  const BlockKernels& ref = *simd::internal::GenericKernelTable();
  Xoshiro256 rng(202);
  for (Isa isa : SupportedIsas()) {
    const BlockKernels& kn = Table(isa);
    for (int trial = 0; trial < 4000; ++trial) {
      const Scenario s =
          RandomScenario(rng, trial % 3 == 0, trial % 5 == 0);
      const uint64_t count = RandomCount(rng);
      CheckMutatingKernel(kn, ref, &BlockKernels::blocked_add64, s, count,
                          simd::IsaName(isa));
      CheckMutatingKernel(kn, ref, &BlockKernels::blocked_add32, s, count,
                          simd::IsaName(isa));
    }
  }
}

TEST_F(SimdDifferentialTest, BlockedLiftMatchesGeneric) {
  const BlockKernels& ref = *simd::internal::GenericKernelTable();
  Xoshiro256 rng(303);
  for (Isa isa : SupportedIsas()) {
    const BlockKernels& kn = Table(isa);
    for (int trial = 0; trial < 4000; ++trial) {
      const Scenario s =
          RandomScenario(rng, trial % 3 == 0, trial % 5 == 0);
      const uint64_t count = RandomCount(rng);
      CheckMutatingKernel(kn, ref, &BlockKernels::blocked_lift64, s, count,
                          simd::IsaName(isa));
      CheckMutatingKernel(kn, ref, &BlockKernels::blocked_lift32, s, count,
                          simd::IsaName(isa));
    }
  }
}

// batch_min64/batch_min32 must equal looping the per-block min over the
// same (base, mixed) pairs — including odd chunk lengths.
TEST_F(SimdDifferentialTest, BatchMinMatchesPerBlockKernels) {
  const BlockKernels& ref = *simd::internal::GenericKernelTable();
  Xoshiro256 rng(505);
  constexpr size_t kBlocks = 64;
  std::vector<uint64_t> words(kBlocks * 8);
  for (uint64_t& w : words) w = rng.Next();
  for (Isa isa : SupportedIsas()) {
    const BlockKernels& kn = Table(isa);
    for (int trial = 0; trial < 200; ++trial) {
      const uint32_t k =
          1 + static_cast<uint32_t>(rng.UniformInt(HashFamily::kMaxK));
      uint64_t alphas[HashFamily::kMaxK];
      for (uint32_t j = 0; j < k; ++j) alphas[j] = rng.Next() | 1;
      const size_t n = 1 + rng.UniformInt(97);  // odd tails included
      std::vector<uint64_t> bases(n);
      std::vector<uint64_t> mixes(n);
      for (size_t i = 0; i < n; ++i) {
        bases[i] = rng.UniformInt(kBlocks) * 8;
        mixes[i] = rng.Next();
      }
      std::vector<uint64_t> got(n);
      std::vector<uint64_t> want(n);
      kn.batch_min64(words.data(), bases.data(), mixes.data(), n, alphas, k,
                     got.data());
      ref.batch_min64(words.data(), bases.data(), mixes.data(), n, alphas, k,
                      want.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << simd::IsaName(isa) << " batch_min64 i="
                                   << i;
        ASSERT_EQ(got[i],
                  kn.blocked_min64(words.data() + bases[i], alphas, k,
                                   mixes[i]))
            << simd::IsaName(isa) << " batch/per-block diverged i=" << i;
      }
      kn.batch_min32(words.data(), bases.data(), mixes.data(), n, alphas, k,
                     got.data());
      ref.batch_min32(words.data(), bases.data(), mixes.data(), n, alphas, k,
                      want.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << simd::IsaName(isa) << " batch_min32 i="
                                   << i;
      }
    }
  }
}

TEST_F(SimdDifferentialTest, GatherMinMatchesGeneric) {
  const BlockKernels& ref = *simd::internal::GenericKernelTable();
  Xoshiro256 rng(404);
  std::vector<uint64_t> words(1024);
  for (uint64_t& w : words) w = rng.Next();
  for (Isa isa : SupportedIsas()) {
    const BlockKernels& kn = Table(isa);
    for (int trial = 0; trial < 4000; ++trial) {
      const uint32_t k =
          1 + static_cast<uint32_t>(rng.UniformInt(HashFamily::kMaxK));
      uint64_t pos64[HashFamily::kMaxK];
      uint64_t pos32[HashFamily::kMaxK];
      for (uint32_t j = 0; j < k; ++j) {
        pos64[j] = rng.UniformInt(words.size());
        pos32[j] = rng.UniformInt(words.size() * 2);
      }
      ASSERT_EQ(kn.gather_min64(words.data(), pos64, k),
                ref.gather_min64(words.data(), pos64, k))
          << simd::IsaName(isa) << " trial " << trial;
      ASSERT_EQ(kn.gather_min32(words.data(), pos32, k),
                ref.gather_min32(words.data(), pos32, k))
          << simd::IsaName(isa) << " trial " << trial;
    }
  }
}

// --- whole-filter differentials --------------------------------------------

struct FilterCase {
  CounterBacking backing;
  uint64_t block_size;
  SbfPolicy policy;
};

std::vector<FilterCase> SimdFilterCases() {
  return {{CounterBacking::kFixed64, 8, SbfPolicy::kMinimumSelection},
          {CounterBacking::kFixed64, 8, SbfPolicy::kMinimalIncrease},
          {CounterBacking::kFixed32, 16, SbfPolicy::kMinimumSelection},
          {CounterBacking::kFixed32, 16, SbfPolicy::kMinimalIncrease}};
}

BlockedSbf MakeBlocked(const FilterCase& fc) {
  BlockedSbfOptions options;
  options.m = 1 << 12;
  options.block_size = fc.block_size;
  options.k = 5;
  options.seed = 99;
  options.backing = fc.backing;
  options.policy = fc.policy;
  return BlockedSbf(options);
}

// A duplicate-heavy stream whose length is NOT a multiple of any SIMD lane
// width: the pipeline's ring head and tail handling must stay exact.
std::vector<uint64_t> DuplicateHeavyKeys(size_t n, uint64_t key_space,
                                         uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> keys(n);
  for (uint64_t& key : keys) key = rng.UniformInt(key_space);
  return keys;
}

TEST_F(SimdDifferentialTest, BlockedBatchMatchesScalarAcrossIsas) {
  const std::vector<uint64_t> keys = DuplicateHeavyKeys(1003, 120, 7);
  for (const FilterCase& fc : SimdFilterCases()) {
    // Scalar ground truth: kernels off, scalar ops.
    simd::ForceIsa(Isa::kDisabled);
    BlockedSbf reference = MakeBlocked(fc);
    for (uint64_t key : keys) reference.Insert(key, 3);
    std::vector<uint64_t> want(keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
      want[i] = reference.Estimate(keys[i]);
    }
    const std::vector<uint8_t> want_bytes = reference.Serialize();

    for (Isa isa : SupportedIsas()) {
      simd::ForceIsa(isa);
      BlockedSbf filter = MakeBlocked(fc);
      filter.InsertBatch(keys.data(), keys.size(), 3);
      std::vector<uint64_t> got(keys.size());
      filter.EstimateBatch(keys.data(), keys.size(), got.data());
      ASSERT_EQ(got, want) << simd::IsaName(isa);
      // Byte-exact state: same counters, same saturation tallies.
      ASSERT_EQ(filter.Serialize(), want_bytes) << simd::IsaName(isa);
      ASSERT_EQ(filter.saturation().saturation_clamps,
                reference.saturation().saturation_clamps)
          << simd::IsaName(isa);
    }
  }
}

TEST_F(SimdDifferentialTest, BlockedBatchSaturationMatchesScalar) {
  // Counts sized to drive fixed32 counters onto MaxValue() and the 64-bit
  // MI lift target onto its 2^64-1 clamp — every key takes the kernels'
  // reject path, which must be bit- and tally-identical to scalar.
  const std::vector<uint64_t> keys = DuplicateHeavyKeys(517, 40, 11);
  const uint64_t huge = ~uint64_t{0} / 2 + 3;
  for (const FilterCase& fc : SimdFilterCases()) {
    simd::ForceIsa(Isa::kDisabled);
    BlockedSbf reference = MakeBlocked(fc);
    for (int round = 0; round < 3; ++round) {
      for (uint64_t key : keys) reference.Insert(key, huge);
    }
    const std::vector<uint8_t> want_bytes = reference.Serialize();

    for (Isa isa : SupportedIsas()) {
      simd::ForceIsa(isa);
      BlockedSbf filter = MakeBlocked(fc);
      for (int round = 0; round < 3; ++round) {
        filter.InsertBatch(keys.data(), keys.size(), huge);
      }
      ASSERT_EQ(filter.Serialize(), want_bytes) << simd::IsaName(isa);
      ASSERT_EQ(filter.saturation().saturation_clamps,
                reference.saturation().saturation_clamps)
          << simd::IsaName(isa);
      ASSERT_EQ(filter.saturation().underflow_clamps,
                reference.saturation().underflow_clamps)
          << simd::IsaName(isa);
    }
  }
}

TEST_F(SimdDifferentialTest, BlockedUnalignedTailLengths) {
  // Every n in [1, 40) exercises a different tail against the 8- and
  // 16-lane geometries and the W=8 pipeline ring.
  const std::vector<uint64_t> all_keys = DuplicateHeavyKeys(40, 25, 13);
  for (const FilterCase& fc : SimdFilterCases()) {
    for (size_t n = 1; n < all_keys.size(); ++n) {
      simd::ForceIsa(Isa::kDisabled);
      BlockedSbf reference = MakeBlocked(fc);
      for (size_t i = 0; i < n; ++i) reference.Insert(all_keys[i], 2);
      std::vector<uint64_t> want(n);
      for (size_t i = 0; i < n; ++i) {
        want[i] = reference.Estimate(all_keys[i]);
      }
      for (Isa isa : SupportedIsas()) {
        simd::ForceIsa(isa);
        BlockedSbf filter = MakeBlocked(fc);
        filter.InsertBatch(all_keys.data(), n, 2);
        std::vector<uint64_t> got(n);
        filter.EstimateBatch(all_keys.data(), n, got.data());
        ASSERT_EQ(got, want) << simd::IsaName(isa) << " n=" << n;
      }
    }
  }
}

TEST_F(SimdDifferentialTest, SbfGatherEstimateMatchesScalarAcrossIsas) {
  const std::vector<uint64_t> keys = DuplicateHeavyKeys(1003, 200, 17);
  for (CounterBacking backing :
       {CounterBacking::kFixed64, CounterBacking::kFixed32}) {
    SbfOptions options;
    options.m = 4096;
    options.k = 5;
    options.seed = 5;
    options.backing = backing;

    simd::ForceIsa(Isa::kDisabled);
    SpectralBloomFilter reference(options);
    reference.InsertBatch(keys.data(), keys.size(), 7);
    std::vector<uint64_t> want(keys.size());
    reference.EstimateBatch(keys.data(), keys.size(), want.data());

    for (Isa isa : SupportedIsas()) {
      simd::ForceIsa(isa);
      SpectralBloomFilter filter(options);
      filter.InsertBatch(keys.data(), keys.size(), 7);
      std::vector<uint64_t> got(keys.size());
      filter.EstimateBatch(keys.data(), keys.size(), got.data());
      ASSERT_EQ(got, want) << simd::IsaName(isa);
    }
  }
}

TEST_F(SimdDifferentialTest, NonSimdGeometriesUnaffectedByForceIsa) {
  // A geometry the kernels cannot serve (block_size 4) must produce the
  // same results whatever ISA is forced — it always takes the legacy path.
  BlockedSbfOptions options;
  options.m = 1 << 10;
  options.block_size = 4;
  options.k = 3;
  options.seed = 21;
  options.backing = CounterBacking::kFixed64;
  const std::vector<uint64_t> keys = DuplicateHeavyKeys(333, 50, 19);

  simd::ForceIsa(Isa::kDisabled);
  BlockedSbf reference(options);
  reference.InsertBatch(keys.data(), keys.size(), 1);
  const std::vector<uint8_t> want_bytes = reference.Serialize();

  for (Isa isa : SupportedIsas()) {
    simd::ForceIsa(isa);
    BlockedSbf filter(options);
    filter.InsertBatch(keys.data(), keys.size(), 1);
    ASSERT_EQ(filter.Serialize(), want_bytes) << simd::IsaName(isa);
  }
}

TEST_F(SimdDifferentialTest, DispatchReportsSupportedTable) {
  const BlockKernels& active = simd::Active();
  ASSERT_TRUE(simd::IsaSupported(active.isa));
  ASSERT_EQ(simd::BestSupportedIsa() == Isa::kGeneric,
            !simd::IsaSupported(Isa::kSse2) && !simd::IsaSupported(Isa::kAvx2));
  // Forcing each supported ISA must round-trip through Active().
  for (Isa isa : SupportedIsas()) {
    simd::ForceIsa(isa);
    ASSERT_EQ(simd::Active().isa, isa);
    ASSERT_TRUE(simd::Active().enabled);
  }
  simd::ForceIsa(Isa::kDisabled);
  ASSERT_FALSE(simd::Active().enabled);
}

}  // namespace
}  // namespace sbf
