#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "db/range_tree.h"
#include "util/random.h"

namespace sbf {
namespace {

SbfOptions MakeOptions(uint64_t m, uint32_t k, uint64_t seed) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  return options;
}

TEST(RangeTreeTest, DomainRoundsToPowerOfTwo) {
  RangeTreeSbf tree(1000, MakeOptions(100000, 5, 1));
  EXPECT_EQ(tree.domain_size(), 1024u);
  EXPECT_EQ(tree.levels(), 10u);
}

TEST(RangeTreeTest, PointQueriesExactUnderLightLoad) {
  RangeTreeSbf tree(256, MakeOptions(200000, 5, 3));
  for (uint64_t v = 0; v < 50; ++v) tree.Insert(v, v + 1);
  for (uint64_t v = 0; v < 50; ++v) {
    ASSERT_EQ(tree.EstimatePoint(v), v + 1) << v;
  }
  EXPECT_EQ(tree.EstimatePoint(200), 0u);
}

TEST(RangeTreeTest, RangeCountsMatchExactOnLightLoad) {
  RangeTreeSbf tree(512, MakeOptions(400000, 5, 5));
  std::vector<uint64_t> counts(512, 0);
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.UniformInt(512);
    tree.Insert(v);
    ++counts[v];
  }
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t lo = rng.UniformInt(512);
    const uint64_t hi = lo + rng.UniformInt(512 - lo) + 1;
    uint64_t exact = 0;
    for (uint64_t v = lo; v < hi; ++v) exact += counts[v];
    const auto estimate = tree.EstimateRange(lo, hi);
    ASSERT_EQ(estimate.count, exact) << "[" << lo << "," << hi << ")";
  }
}

TEST(RangeTreeTest, EstimatesAreUpperBoundsUnderLoad) {
  // Smaller SBF: collisions happen, but errors stay one-sided.
  RangeTreeSbf tree(1024, MakeOptions(30000, 5, 9));
  std::vector<uint64_t> counts(1024, 0);
  Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.UniformInt(1024);
    tree.Insert(v);
    ++counts[v];
  }
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t lo = rng.UniformInt(1024);
    const uint64_t hi = lo + rng.UniformInt(1024 - lo) + 1;
    uint64_t exact = 0;
    for (uint64_t v = lo; v < hi; ++v) exact += counts[v];
    ASSERT_GE(tree.EstimateRange(lo, hi).count, exact);
  }
}

TEST(RangeTreeTest, ProbeCountBoundedByTheorem11) {
  RangeTreeSbf tree(4096, MakeOptions(100000, 3, 13));
  Xoshiro256 rng(15);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t lo = rng.UniformInt(4096);
    const uint64_t hi = lo + rng.UniformInt(4096 - lo) + 1;
    const auto estimate = tree.EstimateRange(lo, hi);
    const double width = static_cast<double>(hi - lo);
    const uint32_t bound =
        2 * static_cast<uint32_t>(std::ceil(std::log2(width + 1))) + 2;
    ASSERT_LE(estimate.probes, bound) << "[" << lo << "," << hi << ")";
  }
}

TEST(RangeTreeTest, FullDomainRangeEqualsTotal) {
  RangeTreeSbf tree(128, MakeOptions(100000, 5, 17));
  for (uint64_t v = 0; v < 128; v += 3) tree.Insert(v, 2);
  const auto estimate = tree.EstimateRange(0, 128);
  EXPECT_EQ(estimate.count, 2u * 43);
  EXPECT_LE(estimate.probes, 2u);  // root or two half-roots
}

TEST(RangeTreeTest, EmptyRange) {
  RangeTreeSbf tree(64, MakeOptions(10000, 5, 19));
  tree.Insert(5);
  const auto estimate = tree.EstimateRange(10, 10);
  EXPECT_EQ(estimate.count, 0u);
  EXPECT_EQ(estimate.probes, 0u);
}

TEST(RangeTreeTest, RemoveSupportsSlidingData) {
  RangeTreeSbf tree(256, MakeOptions(100000, 5, 21));
  tree.Insert(10, 5);
  tree.Insert(20, 3);
  tree.Remove(10, 5);
  EXPECT_EQ(tree.EstimatePoint(10), 0u);
  EXPECT_EQ(tree.EstimateRange(0, 256).count, 3u);
}

TEST(RangeTreeTest, SqlStyleOpenInterval) {
  // SELECT count(a) WHERE a > 10 AND a < 20  ->  [11, 20).
  RangeTreeSbf tree(64, MakeOptions(50000, 5, 23));
  for (uint64_t v = 5; v <= 25; ++v) tree.Insert(v);
  EXPECT_EQ(tree.EstimateRange(11, 20).count, 9u);
}

}  // namespace
}  // namespace sbf
