#include <gtest/gtest.h>

#include <vector>

#include "bitstream/rank_select.h"
#include "util/random.h"

namespace sbf {
namespace {

// Reference implementations.
size_t NaiveRank1(const BitVector& bits, size_t pos) {
  size_t count = 0;
  for (size_t i = 0; i < pos; ++i) count += bits.GetBit(i);
  return count;
}

size_t NaiveSelect1(const BitVector& bits, size_t j) {
  size_t seen = 0;
  for (size_t i = 0; i < bits.size_bits(); ++i) {
    if (bits.GetBit(i) && seen++ == j) return i;
  }
  return ~0ull;
}

TEST(RankSelectTest, EmptyVector) {
  BitVector bits(100);
  RankSelect rs(&bits);
  EXPECT_EQ(rs.num_ones(), 0u);
  EXPECT_EQ(rs.Rank1(0), 0u);
  EXPECT_EQ(rs.Rank1(100), 0u);
  EXPECT_EQ(rs.Rank0(100), 100u);
}

TEST(RankSelectTest, AllOnes) {
  BitVector bits(777);
  for (size_t i = 0; i < 777; ++i) bits.SetBit(i, true);
  RankSelect rs(&bits);
  EXPECT_EQ(rs.num_ones(), 777u);
  for (size_t i : {0ul, 1ul, 63ul, 64ul, 511ul, 512ul, 777ul}) {
    EXPECT_EQ(rs.Rank1(i), i);
  }
  for (size_t j : {0ul, 100ul, 511ul, 512ul, 776ul}) {
    EXPECT_EQ(rs.Select1(j), j);
  }
}

TEST(RankSelectTest, SingleBitPositions) {
  for (size_t pos : {0ul, 1ul, 63ul, 64ul, 65ul, 500ul, 511ul, 512ul, 1000ul}) {
    BitVector bits(1024);
    bits.SetBit(pos, true);
    RankSelect rs(&bits);
    EXPECT_EQ(rs.num_ones(), 1u);
    EXPECT_EQ(rs.Select1(0), pos);
    EXPECT_EQ(rs.Rank1(pos), 0u);
    EXPECT_EQ(rs.Rank1(pos + 1), 1u);
  }
}

class RankSelectDensityTest : public ::testing::TestWithParam<double> {};

TEST_P(RankSelectDensityTest, MatchesNaiveOnRandomVectors) {
  const double density = GetParam();
  constexpr size_t kBits = 5000;
  BitVector bits(kBits);
  Xoshiro256 rng(static_cast<uint64_t>(density * 1000) + 7);
  for (size_t i = 0; i < kBits; ++i) {
    bits.SetBit(i, rng.UniformDouble() < density);
  }
  RankSelect rs(&bits);

  // Rank at a grid of positions.
  for (size_t pos = 0; pos <= kBits; pos += 97) {
    ASSERT_EQ(rs.Rank1(pos), NaiveRank1(bits, pos)) << pos;
  }
  // Select of every ~17th one.
  for (size_t j = 0; j < rs.num_ones(); j += 17) {
    ASSERT_EQ(rs.Select1(j), NaiveSelect1(bits, j)) << j;
  }
  // Rank/select inverse property.
  for (size_t j = 0; j < rs.num_ones(); j += 131) {
    const size_t pos = rs.Select1(j);
    ASSERT_TRUE(bits.GetBit(pos));
    ASSERT_EQ(rs.Rank1(pos), j);
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, RankSelectDensityTest,
                         ::testing::Values(0.01, 0.1, 0.5, 0.9, 0.99));

TEST(RankSelectTest, OverheadIsSublinear) {
  BitVector bits(1 << 16);
  RankSelect rs(&bits);
  // Directory should be far below the vector size (o(N) in practice).
  EXPECT_LT(rs.OverheadBits(), bits.size_bits());
}

TEST(RankSelectTest, LastBitSelect) {
  BitVector bits(640);
  bits.SetBit(639, true);
  bits.SetBit(0, true);
  RankSelect rs(&bits);
  EXPECT_EQ(rs.Select1(0), 0u);
  EXPECT_EQ(rs.Select1(1), 639u);
}

}  // namespace
}  // namespace sbf
