// Corruption matrix for the SBF_AUDIT validator layer (DESIGN.md §7).
//
// Two angles on every CheckInvariants() implementation:
//
//  1. Soundness — a freshly built, normally exercised structure (and its
//     Serialize→Deserialize round trip) must pass. A validator that cries
//     wolf is worse than no validator: audit builds would abort on healthy
//     filters.
//  2. Sensitivity — a structure corrupted through a channel the validator
//     claims to cover must FAIL, with a status naming the invariant. Each
//     corruption below breaks exactly one documented invariant: the SBF
//     counter-sum lower bound, fixed-width tail padding, Bloom padding
//     bits, a stale rank/select directory.
//
// The statistical rules (counter sum, population bound) are provable only
// while every update went through the public insert paths, so they are
// gated on provenance flags retired by set_total_items()/ExpandTo()/
// Deserialize(). The soundness cases below pin the gating: the retiring
// operations must leave a passing filter, not a false alarm.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "bitstream/bit_vector.h"
#include "bitstream/rank_select.h"
#include "core/bloom_filter.h"
#include "core/blocked_sbf.h"
#include "core/concurrent_sbf.h"
#include "core/counting_bloom_filter.h"
#include "core/recurring_minimum.h"
#include "core/sliding_window.h"
#include "core/spectral_bloom_filter.h"
#include "core/trapping_rm.h"
#include "io/wire.h"
#include "sai/compact_counter_vector.h"
#include "sai/counter_vector.h"
#include "sai/fixed_counter_vector.h"
#include "sai/select_index.h"
#include "sai/serial_scan_counter_vector.h"
#include "util/fault_injection.h"

namespace sbf {
namespace {

SbfOptions MakeSbfOptions(uint64_t m, uint32_t k, CounterBacking backing,
                          uint64_t seed = 7) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.backing = backing;
  options.seed = seed;
  return options;
}

// Flips bit `bit` of payload byte `offset` in a sealed wire frame and
// reseals the CRC so the corruption reaches the decoder instead of being
// rejected by the envelope check. This models corruption *before*
// serialization (a scrambled structure written out healthy-looking), the
// exact gap the structural validators exist to close.
std::vector<uint8_t> FlipPayloadBit(std::vector<uint8_t> frame, size_t offset,
                                    int bit) {
  const size_t pos = wire::kFrameHeaderSize + offset;
  EXPECT_LT(pos, frame.size());
  frame[pos] ^= static_cast<uint8_t>(1u << bit);
  const uint32_t crc = wire::Crc32c(frame.data() + wire::kFrameHeaderSize,
                                    frame.size() - wire::kFrameHeaderSize);
  for (int i = 0; i < 4; ++i) {
    frame[16 + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  return frame;
}

// --- soundness: healthy structures must pass -------------------------------

class CleanBackingTest : public ::testing::TestWithParam<CounterBacking> {};

TEST_P(CleanBackingTest, SbfPassesFreshLoadedAndRoundTripped) {
  SpectralBloomFilter filter(MakeSbfOptions(512, 4, GetParam()));
  EXPECT_TRUE(filter.CheckInvariants().ok());
  for (uint64_t key = 1; key <= 200; ++key) filter.Insert(key, key % 7 + 1);
  EXPECT_TRUE(filter.CheckInvariants().ok());

  auto restored = SpectralBloomFilter::Deserialize(filter.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored.value().CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(AllBackings, CleanBackingTest,
                         ::testing::Values(CounterBacking::kFixed64,
                                           CounterBacking::kCompact,
                                           CounterBacking::kSerialScan));

TEST(AuditCleanTest, AllFrontendsPass) {
  BloomFilter bloom(1000, 3, 11);
  for (uint64_t key = 0; key < 300; ++key) bloom.Add(key);
  EXPECT_TRUE(bloom.CheckInvariants().ok());

  CountingBloomFilter cbf(1000, 4, 4, 13);
  for (uint64_t key = 0; key < 200; ++key) cbf.Insert(key);
  EXPECT_TRUE(cbf.CheckInvariants().ok());

  BlockedSbfOptions blocked_options;
  blocked_options.m = 4096;
  blocked_options.block_size = 256;
  blocked_options.k = 4;
  blocked_options.seed = 17;
  BlockedSbf blocked(blocked_options);
  for (uint64_t key = 0; key < 500; ++key) blocked.Insert(key);
  EXPECT_TRUE(blocked.CheckInvariants().ok());

  RecurringMinimumOptions rm_options;
  rm_options.primary_m = 2000;
  rm_options.secondary_m = 1000;
  rm_options.k = 4;
  rm_options.seed = 19;
  rm_options.use_marker_filter = true;
  rm_options.backing = CounterBacking::kFixed64;
  RecurringMinimumSbf rm(rm_options);
  for (uint64_t key = 0; key < 400; ++key) rm.Insert(key % 60);
  EXPECT_TRUE(rm.CheckInvariants().ok());

  rm_options.use_marker_filter = false;
  TrappingRmSbf trapping(rm_options);
  for (uint64_t key = 0; key < 400; ++key) trapping.Insert(key % 60);
  EXPECT_TRUE(trapping.CheckInvariants().ok());

  ConcurrentSbfOptions concurrent_options;
  concurrent_options.m = 8192;
  concurrent_options.k = 4;
  concurrent_options.num_shards = 4;
  concurrent_options.seed = 23;
  concurrent_options.backing = CounterBacking::kFixed64;
  ConcurrentSbf concurrent(concurrent_options);
  for (uint64_t key = 0; key < 500; ++key) concurrent.Insert(key);
  EXPECT_TRUE(concurrent.CheckInvariants().ok());

  SlidingWindowFilter window(
      std::make_unique<SpectralBloomFilter>(
          MakeSbfOptions(4096, 4, CounterBacking::kFixed64)),
      64);
  for (uint64_t key = 0; key < 200; ++key) window.Push(key % 30);
  EXPECT_TRUE(window.CheckInvariants().ok());
}

TEST(AuditCleanTest, IndexStructuresPass) {
  BitVector bits(1000);
  for (size_t i = 0; i < 1000; i += 3) bits.SetBit(i, true);
  RankSelect rank_select(&bits);
  EXPECT_TRUE(rank_select.CheckInvariants().ok());

  SelectIndex index(std::vector<uint32_t>{3, 9, 1, 27, 5});
  EXPECT_TRUE(index.CheckInvariants().ok());
}

// --- sensitivity: each corruption channel must be caught -------------------

// Lowering one counter under an inserted key breaks the Minimum Selection
// identity sum(C) >= k * total_items (every insert adds exactly k to the
// sum when nothing clamps).
TEST(AuditCorruptionTest, SbfSumBoundCatchesLoweredCounter) {
  SpectralBloomFilter filter(
      MakeSbfOptions(512, 4, CounterBacking::kFixed64));
  for (uint64_t key = 1; key <= 100; ++key) filter.Insert(key);
  ASSERT_TRUE(filter.CheckInvariants().ok());

  const uint64_t position = filter.hash().Position(42, 0);
  const uint64_t value = filter.counters().Get(position);
  ASSERT_GE(value, 1u);
  filter.mutable_counters().Set(position, value - 1);

  const Status status = filter.CheckInvariants();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("sum"), std::string::npos)
      << status.message();
}

// Scribbling on the slack bits past m*width in the last backing word
// violates the fixed-width vector's zeroed-tail invariant.
TEST(AuditCorruptionTest, FixedCountersCatchTailScribble) {
  FixedWidthCounterVector counters(10, 5);  // 50 payload bits, 14 slack
  counters.Set(3, 21);
  ASSERT_TRUE(counters.CheckInvariants().ok());

  counters.mutable_words()[0] |= uint64_t{1} << 63;
  EXPECT_FALSE(counters.CheckInvariants().ok());
}

// Mutating the bit vector after directory construction leaves rank/select
// answering for a vector that no longer exists; the replay audit recounts.
TEST(AuditCorruptionTest, RankSelectCatchesStaleDirectory) {
  BitVector bits(2000);
  for (size_t i = 0; i < 2000; i += 5) bits.SetBit(i, true);
  RankSelect rank_select(&bits);
  ASSERT_TRUE(rank_select.CheckInvariants().ok());

  bits.SetBit(1, true);  // was clear: popcount drifts from the directory
  EXPECT_FALSE(rank_select.CheckInvariants().ok());
}

// A padding bit set in the serialized raw words survives the resealed CRC
// but is rejected by the decoder's own padding check — the first line of
// the layered defence (decode-time sanitizing before any validator runs).
TEST(AuditCorruptionTest, DecoderRejectsPaddingBitFlip) {
  BloomFilter bloom(100, 3, 29);  // bits 100..127 of word 1 are padding
  for (uint64_t key = 0; key < 40; ++key) bloom.Add(key);
  const std::vector<uint8_t> frame = bloom.Serialize();
  // Highest bit of the last payload byte = bit 127 of the raw bit words.
  auto restored = BloomFilter::Deserialize(
      FlipPayloadBit(frame, frame.size() - wire::kFrameHeaderSize - 1, 7));
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("padding"), std::string::npos)
      << restored.status().message();
}

// The statistical rules must retire, not misfire, on the operations that
// legitimately void them — the exact false alarms the first audit-mode run
// of the full suite caught: expansion replicates Bloom bits without
// touching num_added, and the trapping frontend's MoveToSecondary lifts
// secondary counters below the k * total_items floor by design.
TEST(AuditCleanTest, ExpandedBloomFilterStillPasses) {
  BloomFilter bloom(100, 3, 29);
  for (uint64_t key = 0; key < 60; ++key) bloom.Add(key);
  ASSERT_TRUE(bloom.ExpandTo(400).ok());
  EXPECT_TRUE(bloom.CheckInvariants().ok());
  for (uint64_t key = 0; key < 60; ++key) EXPECT_TRUE(bloom.Contains(key));
}

TEST(AuditCleanTest, TrappingSecondaryLiftStillPasses) {
  RecurringMinimumOptions options;
  options.primary_m = 600;
  options.secondary_m = 300;
  options.k = 4;
  options.seed = 31;
  options.backing = CounterBacking::kFixed64;
  TrappingRmSbf filter(options);
  // A crowded primary forces single-minimum keys into the secondary via
  // MoveToSecondary's counter lift.
  for (uint64_t key = 0; key < 2000; ++key) filter.Insert(key % 250);
  EXPECT_TRUE(filter.CheckInvariants().ok());

  auto restored = TrappingRmSbf::Deserialize(filter.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored.value().CheckInvariants().ok());
}

// Differential sweep over the raw-words region of a Bloom frame: every
// single-bit flip (CRC resealed) must land in a lawful outcome — rejected
// by the decoder or decoded into a *structurally valid* filter (different
// membership, same coherent shape). The 28 padding bits guarantee the
// rejected bucket is populated; nothing may decode into a filter the
// validator then disowns.
TEST(AuditCorruptionTest, WordRegionSweepRejectsOrStaysValid) {
  BloomFilter bloom(100, 3, 31);
  for (uint64_t key = 0; key < 40; ++key) bloom.Add(key);
  const std::vector<uint8_t> frame = bloom.Serialize();
  const size_t payload_size = frame.size() - wire::kFrameHeaderSize;
  const size_t words_start = payload_size - 16;  // two 64-bit raw words

  size_t rejected = 0;
  for (size_t offset = words_start; offset < payload_size; ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      auto restored =
          BloomFilter::Deserialize(FlipPayloadBit(frame, offset, bit));
      if (!restored.ok()) {
        ++rejected;
        continue;
      }
      EXPECT_TRUE(restored.value().CheckInvariants().ok());
      EXPECT_EQ(restored.value().m(), 100u);
      EXPECT_EQ(restored.value().k(), 3u);
    }
  }
  // Each of the 28 padding-bit flips (bits 100..127) must be rejected.
  EXPECT_GE(rejected, 28u);
}

// --- fault-injection integration -------------------------------------------

#if defined(SBF_FAULT_INJECTION) && !defined(SBF_AUDIT)
// Deterministic counter flips (the fault_injection_test harness's channel)
// checked against the validator: whenever the injected flips leave the
// counter sum below the Minimum Selection floor, the audit must say so;
// when every flip landed upward, the one-sided validator must stay quiet.
TEST(AuditFaultInjectionTest, ValidatorVerdictMatchesInjectedSum) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    fault::ArmCounterFlips(seed, 16);
    SpectralBloomFilter filter(
        MakeSbfOptions(1024, 4, CounterBacking::kFixed64, seed));
    for (uint64_t key = 1; key <= 300; ++key) filter.Insert(key);
    fault::Reset();

    const bool sum_holds =
        filter.counters().Total() >= uint64_t{4} * filter.total_items();
    EXPECT_EQ(filter.CheckInvariants().ok(), sum_holds) << "seed " << seed;
  }
}
#endif  // SBF_FAULT_INJECTION && !SBF_AUDIT

}  // namespace
}  // namespace sbf
