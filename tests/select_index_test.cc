#include <gtest/gtest.h>

#include <vector>

#include "sai/select_index.h"
#include "sai/string_array_index.h"
#include "util/random.h"

namespace sbf {
namespace {

TEST(SelectIndexTest, SingleString) {
  SelectIndex index(std::vector<uint32_t>{9});
  EXPECT_EQ(index.Offset(0), 0u);
  EXPECT_EQ(index.Offset(1), 9u);
}

TEST(SelectIndexTest, UniformLengths) {
  std::vector<uint32_t> lengths(500, 4);
  SelectIndex index(lengths);
  for (size_t i = 0; i <= 500; ++i) {
    ASSERT_EQ(index.Offset(i), i * 4) << i;
  }
}

TEST(SelectIndexTest, RejectsZeroLengths) {
  EXPECT_DEATH(SelectIndex(std::vector<uint32_t>{3, 0, 5}), "positive");
}

class SelectIndexRandomTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SelectIndexRandomTest, MatchesPrefixSums) {
  Xoshiro256 rng(GetParam() * 7 + 3);
  std::vector<uint32_t> lengths(4000);
  for (auto& len : lengths) {
    len = 1 + static_cast<uint32_t>(rng.UniformInt(GetParam()));
  }
  SelectIndex index(lengths);
  size_t expected = 0;
  for (size_t i = 0; i < lengths.size(); ++i) {
    ASSERT_EQ(index.Offset(i), expected) << i;
    expected += lengths[i];
  }
  EXPECT_EQ(index.Offset(lengths.size()), expected);
}

INSTANTIATE_TEST_SUITE_P(MaxLengths, SelectIndexRandomTest,
                         ::testing::Values(1, 4, 16, 64, 300));

TEST(SelectIndexTest, AgreesWithStringArrayIndex) {
  // The two static structures implement the same function — differential
  // check over a skewed length distribution.
  Xoshiro256 rng(99);
  std::vector<uint32_t> lengths(10000);
  for (auto& len : lengths) {
    len = rng.UniformInt(100) < 90 ? 1 + rng.UniformInt(4)
                                   : 10 + rng.UniformInt(54);
  }
  SelectIndex select(lengths);
  StringArrayIndex sai(lengths);
  for (size_t i = 0; i <= lengths.size(); i += 13) {
    ASSERT_EQ(select.Offset(i), sai.Offset(i)) << i;
  }
}

TEST(SelectIndexTest, IndexBitsCoverMarkerVector) {
  std::vector<uint32_t> lengths(1000, 8);
  SelectIndex index(lengths);
  // The marker vector alone is N bits — the structural cost the
  // string-array index avoids.
  EXPECT_GE(index.IndexBits(), index.total_bits());
}

}  // namespace
}  // namespace sbf
