// Golden-blob guard for the wire format: every frame type is serialized
// from a deterministic, integer-only workload and compared byte-for-byte
// against a blob committed under tests/golden/. Any accidental format
// change — field reordered, width changed, version bumped without a
// migration plan — fails here before it can strand persisted filters.
//
// To regenerate after an *intentional* format change:
//
//   SBF_UPDATE_GOLDEN=1 ./golden_wire_test
//
// and commit the new blobs together with the format change and a
// kFormatVersion bump.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/blocked_sbf.h"
#include "core/bloom_filter.h"
#include "core/concurrent_sbf.h"
#include "core/counting_bloom_filter.h"
#include "core/recurring_minimum.h"
#include "core/sliding_window.h"
#include "core/spectral_bloom_filter.h"
#include "core/trapping_rm.h"
#include "db/bloomjoin.h"
#include "io/delta_log.h"
#include "io/filter_codec.h"
#include "io/wire.h"
#include "sai/counter_vector.h"

namespace sbf {
namespace {

using Bytes = std::vector<uint8_t>;

std::string GoldenPath(const std::string& name) {
  return std::string(SBF_GOLDEN_DIR) + "/" + name + ".bin";
}

bool UpdateMode() { return std::getenv("SBF_UPDATE_GOLDEN") != nullptr; }

// In update mode, (re)writes the blob and passes; otherwise the serialized
// bytes must match the committed blob exactly.
void CheckGolden(const std::string& name, const Bytes& bytes) {
  const std::string path = GoldenPath(name);
  if (UpdateMode()) {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden blob " << path
                         << " (run with SBF_UPDATE_GOLDEN=1 to create)";
  const Bytes golden((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), golden.size()) << name << " frame size drifted";
  EXPECT_EQ(bytes, golden)
      << name << " wire bytes drifted from tests/golden/" << name << ".bin";
}

// Deterministic integer-only key stream: key i appears (i % 7) + 1 times.
// No floating point or RNG feeds the serialized bytes, so the blobs are
// identical on every platform.
template <typename InsertFn>
void FeedWorkload(uint64_t keys, const InsertFn& insert) {
  for (uint64_t key = 0; key < keys; ++key) {
    insert(key * 2654435761u % 100003, (key % 7) + 1);
  }
}

TEST(GoldenWireTest, FormatVersionIsPinned) {
  // Bumping the wire version is an intentional, reviewed act: it must ship
  // with regenerated golden blobs and reader-side compatibility handling.
  // This assertion is the tripwire CI relies on.
  EXPECT_EQ(wire::kFormatVersion, 1u)
      << "wire format version changed: regenerate tests/golden/ and update "
         "this pin together with the migration plan";
}

TEST(GoldenWireTest, BloomFilterFrame) {
  BloomFilter filter(1024, 4, 7);
  FeedWorkload(300, [&](uint64_t key, uint64_t) { filter.Add(key); });
  CheckGolden("bloom_filter", filter.Serialize());
}

TEST(GoldenWireTest, FixedCounterFrames) {
  for (const auto& [backing, name] :
       {std::pair{CounterBacking::kFixed64, "counters_fixed64"},
        std::pair{CounterBacking::kFixed32, "counters_fixed32"},
        std::pair{CounterBacking::kCompact, "counters_compact"},
        std::pair{CounterBacking::kSerialScan, "counters_serial_scan"}}) {
    auto counters = MakeCounterVector(backing, 200);
    for (size_t i = 0; i < 200; i += 3) counters->Set(i, (i * 11) % 97);
    CheckGolden(name, counters->Serialize());
  }
}

TEST(GoldenWireTest, SbfFrames) {
  for (const auto& [backing, name] :
       {std::pair{CounterBacking::kFixed64, "sbf_fixed64"},
        std::pair{CounterBacking::kCompact, "sbf_compact"}}) {
    SbfOptions options;
    options.m = 700;
    options.k = 4;
    options.seed = 11;
    options.backing = backing;
    SpectralBloomFilter filter(options);
    FeedWorkload(400, [&](uint64_t key, uint64_t n) { filter.Insert(key, n); });
    CheckGolden(name, filter.Serialize());
  }
}

TEST(GoldenWireTest, ShardedSbfFrame) {
  ConcurrentSbfOptions options;
  options.m = 1600;
  options.k = 4;
  options.num_shards = 4;
  options.seed = 13;
  ConcurrentSbf filter(options);
  FeedWorkload(400, [&](uint64_t key, uint64_t n) { filter.Insert(key, n); });
  CheckGolden("sharded_sbf", filter.Serialize());
}

TEST(GoldenWireTest, CountingBloomFrame) {
  CountingBloomFilter filter(800, 4, 4, 17);
  FeedWorkload(300, [&](uint64_t key, uint64_t n) { filter.Insert(key, n); });
  CheckGolden("counting_bloom", filter.Serialize());
}

TEST(GoldenWireTest, BlockedSbfFrame) {
  BlockedSbfOptions options;
  options.m = 1024;
  options.block_size = 128;
  options.k = 4;
  options.seed = 19;
  BlockedSbf filter(options);
  FeedWorkload(300, [&](uint64_t key, uint64_t n) { filter.Insert(key, n); });
  CheckGolden("blocked_sbf", filter.Serialize());
}

TEST(GoldenWireTest, BlockedSbfV2Frame) {
  // The 'SBb2' frame: a Minimal Increase blocked filter in the SIMD
  // geometry (fixed64, block_size 8), carrying the policy byte the legacy
  // 'SBbk' frame lacks.
  BlockedSbfOptions options;
  options.m = 1024;
  options.block_size = 8;
  options.k = 4;
  options.seed = 19;
  options.backing = CounterBacking::kFixed64;
  options.policy = SbfPolicy::kMinimalIncrease;
  BlockedSbf filter(options);
  FeedWorkload(300, [&](uint64_t key, uint64_t n) { filter.Insert(key, n); });
  CheckGolden("blocked_sbf_v2", filter.Serialize());
}

TEST(GoldenWireTest, RecurringMinimumFrame) {
  RecurringMinimumOptions options;
  options.primary_m = 700;
  options.secondary_m = 180;
  options.k = 4;
  options.seed = 23;
  options.use_marker_filter = true;
  RecurringMinimumSbf filter(options);
  FeedWorkload(400, [&](uint64_t key, uint64_t n) { filter.Insert(key, n); });
  CheckGolden("recurring_minimum", filter.Serialize());
}

TEST(GoldenWireTest, TrappingRmFrame) {
  RecurringMinimumOptions options;
  options.primary_m = 700;
  options.secondary_m = 180;
  options.k = 4;
  options.seed = 29;
  TrappingRmSbf filter(options);
  FeedWorkload(400, [&](uint64_t key, uint64_t n) { filter.Insert(key, n); });
  CheckGolden("trapping_rm", filter.Serialize());
}

TEST(GoldenWireTest, SlidingWindowFrame) {
  SbfOptions options;
  options.m = 500;
  options.k = 4;
  options.seed = 31;
  SlidingWindowFilter window(
      std::make_unique<SpectralBloomFilter>(options), 50);
  FeedWorkload(200, [&](uint64_t key, uint64_t) { window.Push(key); });
  CheckGolden("sliding_window", window.Serialize());
}

TEST(GoldenWireTest, WalFrames) {
  // 'SBwh' / 'SBwr' — the durable store's write-ahead log (io/delta_log.h).
  // The header embeds a deterministic empty sharded filter (the store's
  // configuration); the record is a delta batch over fixed keys.
  ConcurrentSbfOptions options;
  options.m = 1600;
  options.k = 4;
  options.num_shards = 4;
  options.seed = 13;
  const Bytes empty_frame = ConcurrentSbf(options).Serialize();
  CheckGolden("wal_header", io::EncodeWalHeader(3, empty_frame));

  const uint64_t keys[] = {5, 100003, 2654435761u, 0};
  const Bytes record = io::EncodeWalDeltaBatch(/*sequence=*/42,
                                               /*is_remove=*/false,
                                               /*count=*/2, keys, 4);
  CheckGolden("wal_record", record);

  // Byte stability alone could mask a symmetric writer+reader break — the
  // committed record must still decode to the same fields.
  auto decoded = io::DecodeWalRecord(record);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().sequence, 42u);
  EXPECT_EQ(decoded.value().type, io::WalRecordType::kDeltaBatch);
  EXPECT_EQ(decoded.value().keys.size(), 4u);
}

TEST(GoldenWireTest, JoinPartitionFrame) {
  Relation orders("orders");
  FeedWorkload(500, [&](uint64_t key, uint64_t) { orders.Add(key, key); });
  CheckGolden("join_partition", ShipPartition(orders, 900, 4, 37));
}

// Every committed blob must still *load* — byte-stability alone would also
// pass if both writer and reader broke symmetrically, so reconstruct each
// filter blob through the polymorphic codec and re-serialize it.
TEST(GoldenWireTest, GoldenBlobsRoundTripThroughPolymorphicCodec) {
  if (UpdateMode()) GTEST_SKIP() << "blobs are being regenerated";
  for (const std::string name :
       {"sbf_fixed64", "sbf_compact", "sharded_sbf", "counting_bloom",
        "blocked_sbf", "blocked_sbf_v2", "recurring_minimum",
        "trapping_rm"}) {
    std::ifstream in(GoldenPath(name), std::ios::binary);
    ASSERT_TRUE(in.good()) << name;
    const Bytes golden((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
    auto filter = DeserializeFilter(golden);
    ASSERT_TRUE(filter.ok()) << name << ": " << filter.status().ToString();
    EXPECT_EQ(filter.value()->Serialize(), golden) << name;
  }
}

}  // namespace
}  // namespace sbf
