// Concurrency suite for the sharded SBF frontend. Every test here must be
// race-clean under ThreadSanitizer (cmake -DSBF_SANITIZE=thread); the
// determinism tests additionally prove that concurrent execution converges
// to the exact single-threaded filter state after writers join.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/concurrent_sbf.h"
#include "core/spectral_bloom_filter.h"
#include "util/random.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

constexpr int kWriters = 8;
constexpr int kReaders = 8;

ConcurrentSbfOptions MakeOptions(CounterBacking backing, uint32_t num_shards,
                                 uint64_t seed = 42) {
  ConcurrentSbfOptions options;
  options.m = 8192;
  options.k = 4;
  options.policy = SbfPolicy::kMinimumSelection;
  options.backing = backing;
  options.num_shards = num_shards;
  options.seed = seed;
  return options;
}

// Splits [0, n) into `parts` contiguous slices; slice i is [starts[i],
// starts[i+1]).
std::vector<size_t> SliceStarts(size_t n, int parts) {
  std::vector<size_t> starts(parts + 1);
  for (int i = 0; i <= parts; ++i) starts[i] = n * i / parts;
  return starts;
}

class ConcurrentSbfBackingTest
    : public ::testing::TestWithParam<CounterBacking> {};

std::string BackingName(const ::testing::TestParamInfo<CounterBacking>& info) {
  std::string name = CounterBackingName(info.param);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

TEST_P(ConcurrentSbfBackingTest, ConcurrentInsertsMatchSerialReference) {
  // (a) of the issue checklist: after joining N writers, every shard's
  // counters and item totals must equal a single-threaded reference fed
  // the same multiset. Minimum Selection increments commute, so the wire
  // images must match bit for bit.
  const Multiset data = MakeZipfMultiset(400, 20000, 1.0, 7);
  ConcurrentSbf concurrent(MakeOptions(GetParam(), 8));
  ConcurrentSbf reference(MakeOptions(GetParam(), 8));
  reference.InsertBatch(data.stream);

  const auto starts = SliceStarts(data.stream.size(), kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      // Odd writers use the batch API, even writers the point API, so the
      // two paths are proven equivalent and mutually race-clean.
      if (w % 2 == 1) {
        std::vector<uint64_t> slice(data.stream.begin() + starts[w],
                                    data.stream.begin() + starts[w + 1]);
        concurrent.InsertBatch(slice);
      } else {
        for (size_t i = starts[w]; i < starts[w + 1]; ++i) {
          concurrent.Insert(data.stream[i]);
        }
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(concurrent.TotalItems(), data.stream.size());
  EXPECT_EQ(concurrent.Serialize(), reference.Serialize());
  for (uint32_t s = 0; s < concurrent.num_shards(); ++s) {
    EXPECT_EQ(concurrent.SnapshotShard(s).total_items(),
              reference.SnapshotShard(s).total_items())
        << "shard " << s;
  }
}

TEST_P(ConcurrentSbfBackingTest, OneSidedInvariantAfterConcurrentInserts) {
  // (b): Estimate(x) >= f_x under Minimum Selection, regardless of the
  // interleaving that produced the filter.
  const Multiset data = MakeZipfMultiset(300, 15000, 1.0, 11);
  ConcurrentSbf filter(MakeOptions(GetParam(), 4));

  const auto starts = SliceStarts(data.stream.size(), kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = starts[w]; i < starts[w + 1]; ++i) {
        filter.Insert(data.stream[i]);
      }
    });
  }
  for (auto& t : writers) t.join();

  const std::vector<uint64_t> estimates = filter.EstimateBatch(data.keys);
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_GE(estimates[i], data.freqs[i]) << "key index " << i;
    ASSERT_EQ(estimates[i], filter.Estimate(data.keys[i]));
  }
}

TEST_P(ConcurrentSbfBackingTest, ReadersRaceWritersRaceClean) {
  // (c): N writers and M readers running together. Readers check the
  // monotone lower bound (estimates never drop below the pre-inserted
  // baseline frequency); TSan checks race-freedom. Violations are counted
  // into an atomic so the check itself never races gtest internals.
  const Multiset data = MakeZipfMultiset(256, 8000, 1.0, 13);
  ConcurrentSbf filter(MakeOptions(GetParam(), 8));
  filter.InsertBatch(data.stream);  // quiescent baseline

  const Multiset extra = MakeZipfMultiset(256, 8000, 1.0, 17);
  const auto starts = SliceStarts(extra.stream.size(), kWriters);
  std::atomic<uint64_t> violations{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (size_t i = starts[w]; i < starts[w + 1]; ++i) {
        filter.Insert(extra.stream[i]);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Xoshiro256 rng(100 + r);
      // Readers are bounded so slow backings (serial-scan decode on every
      // Get) cannot starve the writers on small machines; the stop flag
      // only shortcuts the tail once every writer has joined.
      for (int q = 0; q < 2000 && !stop.load(std::memory_order_relaxed);
           ++q) {
        const size_t i = rng.UniformInt(data.keys.size());
        if (filter.Estimate(data.keys[i]) < data.freqs[i]) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(filter.TotalItems(), data.stream.size() + extra.stream.size());
}

TEST_P(ConcurrentSbfBackingTest, ConcurrentRemovesMatchSerialReference) {
  // Writers delete disjoint halves of previously inserted data; the result
  // must equal a reference that saw the same multiset of removes.
  const Multiset data = MakeZipfMultiset(200, 10000, 1.0, 19);
  ConcurrentSbf concurrent(MakeOptions(GetParam(), 4));
  ConcurrentSbf reference(MakeOptions(GetParam(), 4));
  concurrent.InsertBatch(data.stream);
  reference.InsertBatch(data.stream);

  // Remove one occurrence of every key (all frequencies are >= 1).
  for (uint64_t key : data.keys) reference.Remove(key);
  const auto starts = SliceStarts(data.keys.size(), kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = starts[w]; i < starts[w + 1]; ++i) {
        concurrent.Remove(data.keys[i]);
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(concurrent.Serialize(), reference.Serialize());
  EXPECT_EQ(concurrent.TotalItems(), data.stream.size() - data.keys.size());
}

TEST_P(ConcurrentSbfBackingTest, MergeMatchesCombinedReference) {
  const Multiset left = MakeZipfMultiset(150, 6000, 1.0, 23);
  const Multiset right = MakeZipfMultiset(150, 6000, 1.0, 29);
  const auto options = MakeOptions(GetParam(), 4);

  ConcurrentSbf a(options), b(options), combined(options);
  a.InsertBatch(left.stream);
  b.InsertBatch(right.stream);
  combined.InsertBatch(left.stream);
  combined.InsertBatch(right.stream);

  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Serialize(), combined.Serialize());
  EXPECT_EQ(a.TotalItems(), left.stream.size() + right.stream.size());
}

TEST_P(ConcurrentSbfBackingTest, MergeRacesWritersRaceClean) {
  // Merging into a filter while other threads insert into it (and into the
  // source) must be race-free and lose no occurrences.
  const Multiset base = MakeZipfMultiset(128, 4000, 1.0, 31);
  const Multiset extra = MakeZipfMultiset(128, 4000, 1.0, 37);
  const auto options = MakeOptions(GetParam(), 4);

  ConcurrentSbf dst(options), src(options);
  src.InsertBatch(base.stream);

  std::thread writer([&] {
    for (uint64_t key : extra.stream) dst.Insert(key);
  });
  ASSERT_TRUE(dst.Merge(src).ok());
  writer.join();

  EXPECT_EQ(dst.TotalItems(), base.stream.size() + extra.stream.size());
}

INSTANTIATE_TEST_SUITE_P(Backings, ConcurrentSbfBackingTest,
                         ::testing::Values(CounterBacking::kFixed64,
                                           CounterBacking::kFixed32,
                                           CounterBacking::kCompact,
                                           CounterBacking::kSerialScan),
                         BackingName);

TEST(ConcurrentSbfTest, LockFreeOnlyForFixed64MinimumSelection) {
  EXPECT_TRUE(ConcurrentSbf(MakeOptions(CounterBacking::kFixed64, 2))
                  .IsLockFree());
  EXPECT_FALSE(ConcurrentSbf(MakeOptions(CounterBacking::kCompact, 2))
                   .IsLockFree());
  auto options = MakeOptions(CounterBacking::kFixed64, 2);
  options.policy = SbfPolicy::kMinimalIncrease;
  EXPECT_FALSE(ConcurrentSbf(options).IsLockFree());
}

TEST(ConcurrentSbfTest, MinimalIncreasePolicyWorksUnderThreads) {
  // MI always takes the shard lock (its read-modify-write spans counters).
  auto options = MakeOptions(CounterBacking::kCompact, 4);
  options.policy = SbfPolicy::kMinimalIncrease;
  const Multiset data = MakeZipfMultiset(200, 8000, 1.0, 41);
  ConcurrentSbf filter(options);

  const auto starts = SliceStarts(data.stream.size(), 4);
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (size_t i = starts[w]; i < starts[w + 1]; ++i) {
        filter.Insert(data.stream[i]);
      }
    });
  }
  for (auto& t : writers) t.join();

  // MI's one-sided bound holds for any insert interleaving (Claim 4 applies
  // per interleaved prefix).
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_GE(filter.Estimate(data.keys[i]), data.freqs[i]);
  }
}

TEST(ConcurrentSbfTest, ShardRoutingIsDeterministicAndCoversShards) {
  ConcurrentSbf filter(MakeOptions(CounterBacking::kFixed64, 16));
  std::vector<uint64_t> hits(16, 0);
  for (uint64_t key = 0; key < 10000; ++key) {
    const uint32_t s = filter.ShardOf(key);
    ASSERT_LT(s, 16u);
    ASSERT_EQ(s, filter.ShardOf(key));
    ++hits[s];
  }
  for (uint32_t s = 0; s < 16; ++s) {
    // Roughly uniform: expected 625 per shard.
    EXPECT_GT(hits[s], 400u) << "shard " << s;
    EXPECT_LT(hits[s], 900u) << "shard " << s;
  }
}

TEST(ConcurrentSbfTest, BatchApisMatchPointApis) {
  const Multiset data = MakeZipfMultiset(300, 9000, 1.0, 43);
  ConcurrentSbf batched(MakeOptions(CounterBacking::kCompact, 8));
  ConcurrentSbf pointwise(MakeOptions(CounterBacking::kCompact, 8));

  batched.InsertBatch(data.stream);
  for (uint64_t key : data.stream) pointwise.Insert(key);

  EXPECT_EQ(batched.Serialize(), pointwise.Serialize());
  const auto estimates = batched.EstimateBatch(data.keys);
  ASSERT_EQ(estimates.size(), data.keys.size());
  for (size_t i = 0; i < data.keys.size(); ++i) {
    EXPECT_EQ(estimates[i], pointwise.Estimate(data.keys[i]));
  }
}

TEST(ConcurrentSbfTest, ShardMetricsCountOperations) {
  const Multiset data = MakeZipfMultiset(100, 3000, 1.0, 47);
  ConcurrentSbf filter(MakeOptions(CounterBacking::kFixed64, 4));
  filter.InsertBatch(data.stream);
  // The estimates are issued purely to drive the metrics counters.
  for (uint64_t key : data.keys) (void)filter.Estimate(key);
  filter.Remove(data.keys[0]);

  const ShardMetrics::Snapshot totals = filter.metrics().Totals();
  EXPECT_EQ(totals.inserted_keys, data.stream.size());
  EXPECT_EQ(totals.estimated_keys, data.keys.size());
  EXPECT_EQ(totals.removed_keys, 1u);
  EXPECT_GE(totals.batches, 1u);
  EXPECT_EQ(filter.metrics().num_shards(), 4u);

  uint64_t per_shard_inserts = 0;
  for (size_t s = 0; s < 4; ++s) {
    per_shard_inserts += filter.metrics().Shard(s).inserted_keys;
  }
  EXPECT_EQ(per_shard_inserts, totals.inserted_keys);
}

TEST(ConcurrentSbfTest, MergeRejectsIncompatibleOptions) {
  ConcurrentSbf a(MakeOptions(CounterBacking::kFixed64, 4));
  ConcurrentSbf different_shards(MakeOptions(CounterBacking::kFixed64, 8));
  ConcurrentSbf different_seed(MakeOptions(CounterBacking::kFixed64, 4, 99));
  EXPECT_FALSE(a.Merge(different_shards).ok());
  EXPECT_FALSE(a.Merge(different_seed).ok());
  EXPECT_FALSE(a.Merge(a).ok());
}

TEST(ConcurrentSbfTest, SerializeRoundTripPreservesEstimates) {
  const Multiset data = MakeZipfMultiset(200, 6000, 1.0, 53);
  for (const auto backing :
       {CounterBacking::kFixed64, CounterBacking::kCompact}) {
    ConcurrentSbf filter(MakeOptions(backing, 8));
    filter.InsertBatch(data.stream);
    const auto bytes = filter.Serialize();
    auto restored = ConcurrentSbf::Deserialize(bytes);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value().TotalItems(), filter.TotalItems());
    EXPECT_EQ(restored.value().Serialize(), bytes);
    for (uint64_t key : data.keys) {
      ASSERT_EQ(restored.value().Estimate(key), filter.Estimate(key));
    }
  }
}

TEST(ConcurrentSbfTest, SingleShardDegeneratesToPlainSbf) {
  // S=1 routes everything to shard 0: the frontend is exactly one SBF.
  const Multiset data = MakeZipfMultiset(150, 5000, 1.0, 59);
  ConcurrentSbf sharded(MakeOptions(CounterBacking::kCompact, 1));
  sharded.InsertBatch(data.stream);

  SpectralBloomFilter plain(ShardOptions(sharded.options(), 0));
  for (uint64_t key : data.stream) plain.Insert(key);
  for (uint64_t key : data.keys) {
    ASSERT_EQ(sharded.Estimate(key), plain.Estimate(key));
  }
  EXPECT_EQ(sharded.shard(0).Serialize(), plain.Serialize());
}

TEST(ConcurrentSbfDeathTest, RejectsInvalidOptions) {
  EXPECT_DEATH(ConcurrentSbf(MakeOptions(CounterBacking::kFixed64, 0)),
               "num_shards");
  auto zero_m = MakeOptions(CounterBacking::kFixed64, 4);
  zero_m.m = 0;
  EXPECT_DEATH(ConcurrentSbf{zero_m}, "m >= 1");
}

}  // namespace
}  // namespace sbf
