#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "core/recurring_minimum.h"
#include "core/sbf_algebra.h"
#include "core/sliding_window.h"
#include "core/spectral_bloom_filter.h"
#include "db/bloomjoin.h"
#include "db/iceberg.h"
#include "util/metrics.h"
#include "util/random.h"
#include "workload/forest_cover.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

SbfOptions MakeOptions(uint64_t m, uint32_t k, uint64_t seed,
                       CounterBacking backing) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.seed = seed;
  options.backing = backing;
  return options;
}

// The compact storage must be a perfect drop-in: identical estimates to
// the fixed-width backing under arbitrary mixed workloads.
TEST(IntegrationTest, CompactBackingBehaviourallyIdenticalToFixed) {
  SpectralBloomFilter fixed(
      MakeOptions(1500, 5, 42, CounterBacking::kFixed64));
  SpectralBloomFilter compact(
      MakeOptions(1500, 5, 42, CounterBacking::kCompact));
  SpectralBloomFilter serial(
      MakeOptions(1500, 5, 42, CounterBacking::kSerialScan));

  Xoshiro256 rng(1);
  std::unordered_map<uint64_t, uint64_t> live;
  for (int iter = 0; iter < 30000; ++iter) {
    const uint64_t key = rng.UniformInt(500);
    const bool remove = (rng.Next() % 4 == 0) && live[key] > 0;
    if (remove) {
      fixed.Remove(key);
      compact.Remove(key);
      serial.Remove(key);
      --live[key];
    } else {
      fixed.Insert(key);
      compact.Insert(key);
      serial.Insert(key);
      ++live[key];
    }
  }
  for (uint64_t key = 0; key < 600; ++key) {
    const uint64_t expected = fixed.Estimate(key);
    ASSERT_EQ(compact.Estimate(key), expected) << key;
    ASSERT_EQ(serial.Estimate(key), expected) << key;
  }
}

// Distributed pipeline: four sites build partial SBFs over partitions of
// one relation, serialize them, a coordinator deserializes + unions, and
// iceberg-queries the union.
TEST(IntegrationTest, DistributedUnionThenIcebergQuery) {
  const Multiset data = MakeZipfMultiset(400, 20000, 1.0, 5);
  const auto options = MakeOptions(4000, 5, 7, CounterBacking::kCompact);

  std::vector<std::vector<uint8_t>> messages;
  for (int site = 0; site < 4; ++site) {
    SpectralBloomFilter filter(options);
    for (size_t i = site; i < data.stream.size(); i += 4) {
      filter.Insert(data.stream[i]);
    }
    messages.push_back(filter.Serialize());
  }

  SpectralBloomFilter coordinator(options);
  for (const auto& message : messages) {
    auto site_filter = SpectralBloomFilter::Deserialize(message);
    ASSERT_TRUE(site_filter.ok());
    ASSERT_TRUE(UnionInto(&coordinator, site_filter.value()).ok());
  }
  EXPECT_EQ(coordinator.total_items(), data.total());

  const uint64_t threshold = 100;
  size_t missed = 0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    if (data.freqs[i] >= threshold &&
        !coordinator.Contains(data.keys[i], threshold)) {
      ++missed;
    }
  }
  EXPECT_EQ(missed, 0u);
}

// Streaming monitoring stack: a sliding window over an RM filter feeding
// threshold triggers, on the Forest-Cover-like workload.
TEST(IntegrationTest, SlidingWindowMonitoringOnForestCover) {
  ForestCoverOptions fc_options;
  fc_options.num_records = 30000;
  fc_options.num_distinct = 500;
  const Multiset data = MakeForestCoverElevation(fc_options);

  RecurringMinimumOptions rm_options;
  rm_options.primary_m = 4000;
  rm_options.secondary_m = 2000;
  rm_options.k = 5;
  rm_options.seed = 11;
  rm_options.backing = CounterBacking::kCompact;
  SlidingWindowFilter window(std::make_unique<RecurringMinimumSbf>(rm_options),
                             5000);

  for (uint64_t key : data.stream) window.Push(key);
  EXPECT_EQ(window.current_fill(), 5000u);

  // Ground truth over the final window.
  std::unordered_map<uint64_t, uint64_t> live;
  for (size_t i = data.stream.size() - 5000; i < data.stream.size(); ++i) {
    ++live[data.stream[i]];
  }
  size_t false_negatives = 0;
  for (const auto& [key, count] : live) {
    if (window.Estimate(key) < count) ++false_negatives;
  }
  EXPECT_LE(false_negatives, live.size() / 20);
}

// Spectral Bloomjoin feeding a per-group HAVING filter, end to end, with
// serialization crossing the simulated network.
TEST(IntegrationTest, JoinPipelineAccuracy) {
  Relation customers("customers"), orders("orders");
  for (uint64_t id = 1; id <= 400; ++id) customers.Add(id, id);
  Xoshiro256 rng(13);
  for (int i = 0; i < 12000; ++i) {
    orders.Add(rng.UniformInt(400) + 1, i);
  }
  const auto result = SpectralBloomjoin(customers, orders, 4000, 5, 25, 17);
  EXPECT_EQ(result.missed_groups, 0u);
  const auto verified =
      VerifiedSpectralBloomjoin(customers, orders, 4000, 5, 25, 17);
  EXPECT_EQ(verified.false_groups, 0u);
  EXPECT_EQ(verified.missed_groups, 0u);
  EXPECT_GE(result.result_tuples, verified.result_tuples);
}

// Error-metric plumbing mirrors the Figure 6 measurement loop.
TEST(IntegrationTest, Figure6MeasurementLoopSmoke) {
  const Multiset data = MakeZipfMultiset(1000, 100000, 0.5, 19);
  SpectralBloomFilter ms(
      MakeOptions(1000 * 5 * 10 / 7, 5, 21, CounterBacking::kCompact));
  for (uint64_t key : data.stream) ms.Insert(key);

  ErrorStats stats;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    stats.Record(ms.Estimate(data.keys[i]), data.freqs[i]);
  }
  // gamma = 0.7: error ratio should be in the vicinity of E_b ~ 3%.
  EXPECT_LT(stats.ErrorRatio(), 0.10);
  EXPECT_EQ(stats.num_false_negatives(), 0u);
}

}  // namespace
}  // namespace sbf
