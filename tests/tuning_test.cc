#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/spectral_bloom_filter.h"
#include "core/tuning.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

TEST(TuningTest, SizeForErrorHitsTarget) {
  for (double target : {0.1, 0.02, 0.01, 0.001}) {
    const SbfSizing sizing = SizeForError(10000, target);
    // The model error of the recommendation is at or below the target
    // (within rounding slack on k).
    EXPECT_LE(sizing.expected_error, target * 1.4) << target;
    EXPECT_GE(sizing.m, 10000u);
    EXPECT_GE(sizing.k, 1u);
  }
}

TEST(TuningTest, PaperExampleEightBitsPerKey) {
  // The paper's c = 8 example: m = 8n gives slightly over 2% error.
  const SbfSizing sizing = SizeForBudget(1000, 8000);
  EXPECT_NEAR(sizing.expected_error, 0.0216, 0.005);
  EXPECT_EQ(sizing.k, 6u);  // ln2 * 8 = 5.5 -> 5 or 6 (6 is optimal)
}

TEST(TuningTest, SizeForBudgetPicksBestK) {
  const SbfSizing sizing = SizeForBudget(1000, 7143);  // gamma 0.7 at k=5
  // Neighboring k values must not beat the chosen one.
  for (uint32_t k = 1; k <= 12; ++k) {
    const double gamma = 1000.0 * k / 7143.0;
    EXPECT_LE(sizing.expected_error, BloomErrorRate(gamma, k) + 1e-12) << k;
  }
}

TEST(TuningTest, RecommendedOptionsMeetTargetEmpirically) {
  const SbfOptions options = RecommendOptions(1000, 0.02);
  SpectralBloomFilter filter(options);
  const Multiset data = MakeZipfMultiset(1000, 50000, 0.8, 7);
  for (uint64_t key : data.stream) filter.Insert(key);
  size_t errors = 0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    errors += filter.Estimate(data.keys[i]) != data.freqs[i];
  }
  // Allow 2.5x the target for sampling noise on a single run.
  EXPECT_LE(static_cast<double>(errors) / 1000.0, 0.05);
}

TEST(TuningTest, ExpectedErrorRateMatchesAnalysis) {
  SbfOptions options;
  options.m = 5000;
  options.k = 5;
  EXPECT_DOUBLE_EQ(ExpectedErrorRate(options, 1000),
                   BloomErrorRate(1.0, 5));
}

TEST(TuningTest, MoreMemoryNeverHurts) {
  const SbfSizing small = SizeForBudget(1000, 4000);
  const SbfSizing large = SizeForBudget(1000, 16000);
  EXPECT_LT(large.expected_error, small.expected_error);
}

}  // namespace
}  // namespace sbf
