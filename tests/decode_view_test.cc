// Differential suite for the decoded-view layer: DecodeView, GetMany,
// DecodeBlock and EncodeBlock must be exactly equivalent to loops of the
// scalar Get/Set ops — for every backing, across group boundaries, after
// rebuilds and widenings, and under duplicate-heavy access streams. Each
// concrete backing's overrides are exercised here by name; the lint rule
// `decode-view-differential` (scripts/sbf_lint.py) requires that coverage.
//
// Covered overrides:
//   FixedWidthCounterVector   — GetMany / DecodeBlock / EncodeBlock
//   CompactCounterVector      — GetMany / DecodeBlock / EncodeBlock
//   SerialScanCounterVector   — GetMany / DecodeBlock / EncodeBlock

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sai/compact_counter_vector.h"
#include "sai/counter_vector.h"
#include "sai/fixed_counter_vector.h"
#include "sai/serial_scan_counter_vector.h"
#include "util/random.h"

namespace sbf {
namespace {

// Every backing configuration the decoded-view layer must serve, including
// group sizes that do not divide DecodeView::kSpanCounters (so cached spans
// straddle group boundaries) and ones larger than a span.
struct BackingCase {
  const char* name;
  std::unique_ptr<CounterVector> (*make)(size_t m);
};

template <size_t kGroup>
std::unique_ptr<CounterVector> MakeCompact(size_t m) {
  CompactCounterVector::Options opt;
  opt.group_size = kGroup;
  return std::make_unique<CompactCounterVector>(m, opt);
}

template <size_t kGroup>
std::unique_ptr<CounterVector> MakeSerialScan(size_t m) {
  SerialScanCounterVector::Options opt;
  opt.group_size = kGroup;
  return std::make_unique<SerialScanCounterVector>(m, opt);
}

template <uint32_t kWidth>
std::unique_ptr<CounterVector> MakeFixed(size_t m) {
  return std::make_unique<FixedWidthCounterVector>(m, kWidth);
}

const BackingCase kBackings[] = {
    {"fixed64", MakeFixed<64>},
    {"fixed32", MakeFixed<32>},
    {"fixed4", MakeFixed<4>},  // narrow: clamps are reachable
    {"compact_g1", MakeCompact<1>},
    {"compact_g4", MakeCompact<4>},
    {"compact_g8", MakeCompact<8>},
    {"compact_g16", MakeCompact<16>},
    {"compact_g32", MakeCompact<32>},
    {"compact_g64", MakeCompact<64>},
    {"serial_g1", MakeSerialScan<1>},
    {"serial_g4", MakeSerialScan<4>},
    {"serial_g16", MakeSerialScan<16>},
    {"serial_g64", MakeSerialScan<64>},
};

class DecodeViewBackingTest : public ::testing::TestWithParam<BackingCase> {};

// Clamp `value` the way the backing's Set does, for building expectations.
uint64_t ClampTo(const CounterVector& cv, uint64_t value) {
  return std::min(value, cv.MaxValue());
}

// Seeds `cv` and a parallel reference model with a value mix that forces
// widening in the grouped backings (widths 1..17 bits) while staying well
// inside even the 4-bit fixed range for small indices.
std::vector<uint64_t> SeedMixedValues(CounterVector& cv, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> model(cv.size(), 0);
  for (size_t i = 0; i < cv.size(); ++i) {
    uint64_t v = 0;
    switch (rng.UniformInt(4)) {
      case 0: v = 0; break;
      case 1: v = rng.UniformInt(3); break;
      case 2: v = rng.UniformInt(100); break;
      default: v = rng.UniformInt(100000); break;
    }
    const uint64_t clamped = ClampTo(cv, v);
    cv.Set(i, clamped);
    model[i] = clamped;
  }
  return model;
}

// --- GetMany ---------------------------------------------------------------

TEST_P(DecodeViewBackingTest, GetManyMatchesScalarGetSortedAndUnsorted) {
  constexpr size_t kM = 517;  // not a multiple of any group size
  auto cv = GetParam().make(kM);
  auto model = SeedMixedValues(*cv, 11);
  Xoshiro256 rng(12);

  for (int round = 0; round < 40; ++round) {
    const size_t n = 1 + rng.UniformInt(300);
    std::vector<uint64_t> idx(n);
    for (auto& i : idx) i = rng.UniformInt(kM);
    if (round % 2 == 0) std::sort(idx.begin(), idx.end());
    std::vector<uint64_t> got(n, ~0ull);
    cv->GetMany(idx.data(), n, got.data());
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(got[j], model[idx[j]])
          << GetParam().name << " idx " << idx[j] << " round " << round;
    }
  }
}

TEST_P(DecodeViewBackingTest, GetManyDuplicateHeavyStream) {
  constexpr size_t kM = 200;
  auto cv = GetParam().make(kM);
  auto model = SeedMixedValues(*cv, 21);
  Xoshiro256 rng(22);

  // A handful of hot indices repeated many times, interleaved with strays —
  // the shape a skewed key stream hands the batch kernels.
  std::vector<uint64_t> idx;
  uint64_t hot[4] = {rng.UniformInt(kM), rng.UniformInt(kM),
                     rng.UniformInt(kM), rng.UniformInt(kM)};
  for (int j = 0; j < 500; ++j) {
    idx.push_back(j % 5 == 0 ? rng.UniformInt(kM) : hot[j % 4]);
  }
  std::vector<uint64_t> got(idx.size());
  cv->GetMany(idx.data(), idx.size(), got.data());
  for (size_t j = 0; j < idx.size(); ++j) {
    ASSERT_EQ(got[j], model[idx[j]]) << GetParam().name << " pos " << j;
  }
}

// --- DecodeBlock -----------------------------------------------------------

TEST_P(DecodeViewBackingTest, DecodeBlockMatchesScalarAcrossGroupBoundaries) {
  constexpr size_t kM = 300;
  auto cv = GetParam().make(kM);
  auto model = SeedMixedValues(*cv, 31);

  // Every (start, length) around every multiple of the small group sizes,
  // plus full-vector and single-counter ranges.
  std::vector<std::pair<size_t, size_t>> ranges = {{0, kM}, {0, 1},
                                                   {kM - 1, 1}};
  for (size_t b = 0; b < kM; b += 16) {
    for (size_t off : {size_t{0}, size_t{1}, size_t{15}}) {
      const size_t first = std::min(b + off, kM - 1);
      for (size_t len : {size_t{1}, size_t{3}, size_t{17}, size_t{33}}) {
        ranges.emplace_back(first, std::min(len, kM - first));
      }
    }
  }
  std::vector<uint64_t> got(kM, ~0ull);
  for (const auto& [first, len] : ranges) {
    std::fill(got.begin(), got.end(), ~0ull);
    cv->DecodeBlock(first, len, got.data());
    for (size_t j = 0; j < len; ++j) {
      ASSERT_EQ(got[j], model[first + j])
          << GetParam().name << " range [" << first << ", +" << len << ")";
    }
  }
}

// --- EncodeBlock -----------------------------------------------------------

TEST_P(DecodeViewBackingTest, EncodeBlockMatchesScalarSetsWithWidening) {
  constexpr size_t kM = 300;
  auto cv = GetParam().make(kM);
  auto ref = GetParam().make(kM);
  SeedMixedValues(*cv, 41);
  SeedMixedValues(*ref, 41);
  Xoshiro256 rng(42);

  for (int round = 0; round < 30; ++round) {
    const size_t first = rng.UniformInt(kM);
    const size_t len = 1 + rng.UniformInt(kM - first);
    std::vector<uint64_t> values(len);
    for (auto& v : values) {
      // Escalating magnitudes force widening (and, for compact, pushes and
      // rebuilds) mid-pass.
      v = rng.UniformInt(uint64_t{1} << (1 + rng.UniformInt(20)));
    }
    cv->EncodeBlock(first, len, values.data());
    for (size_t j = 0; j < len; ++j) ref->Set(first + j, values[j]);
    for (size_t i = 0; i < kM; ++i) {
      ASSERT_EQ(cv->Get(i), ref->Get(i))
          << GetParam().name << " counter " << i << " round " << round;
    }
    ASSERT_EQ(cv->saturation().saturation_clamps,
              ref->saturation().saturation_clamps)
        << GetParam().name << " round " << round;
  }
  EXPECT_TRUE(cv->CheckInvariants().ok());
}

// --- DecodeView ------------------------------------------------------------

TEST_P(DecodeViewBackingTest, ReadOnlyViewMatchesScalarGet) {
  constexpr size_t kM = 400;
  auto cv = GetParam().make(kM);
  auto model = SeedMixedValues(*cv, 51);
  Xoshiro256 rng(52);

  const CounterVector& ccv = *cv;
  DecodeView view(ccv);
  // Random access pattern with enough spread to force span evictions
  // (> kWays * kSpanCounters distinct counters).
  for (int j = 0; j < 5000; ++j) {
    const size_t i = rng.UniformInt(kM);
    ASSERT_EQ(view.Get(i), model[i]) << GetParam().name << " counter " << i;
  }
  EXPECT_GT(view.decode_count(), 0u);
}

TEST_P(DecodeViewBackingTest, WritableViewMatchesScalarOpSequence) {
  constexpr size_t kM = 400;
  auto cv = GetParam().make(kM);
  auto ref = GetParam().make(kM);
  SeedMixedValues(*cv, 61);
  SeedMixedValues(*ref, 61);
  Xoshiro256 rng(62);

  {
    DecodeView view(*cv);
    for (int j = 0; j < 8000; ++j) {
      const size_t i = rng.UniformInt(kM);
      const uint64_t d = 1 + rng.UniformInt(1000);
      switch (rng.UniformInt(4)) {
        case 0:
          view.Increment(i, d);
          ref->Increment(i, d);
          break;
        case 1:
          view.Decrement(i, d);
          ref->Decrement(i, d);
          break;
        case 2:
          view.Set(i, d * 37);
          ref->Set(i, d * 37);
          break;
        default:
          ASSERT_EQ(view.Get(i), ref->Get(i))
              << GetParam().name << " mid-sequence counter " << i;
      }
    }
  }  // destructor flushes

  for (size_t i = 0; i < kM; ++i) {
    ASSERT_EQ(cv->Get(i), ref->Get(i)) << GetParam().name << " counter " << i;
  }
  ASSERT_EQ(cv->saturation().saturation_clamps,
            ref->saturation().saturation_clamps);
  ASSERT_EQ(cv->saturation().underflow_clamps,
            ref->saturation().underflow_clamps);
  EXPECT_TRUE(cv->CheckInvariants().ok());
}

TEST_P(DecodeViewBackingTest, ViewSurvivesInterleavedFlushes) {
  constexpr size_t kM = 256;
  auto cv = GetParam().make(kM);
  auto ref = GetParam().make(kM);
  Xoshiro256 rng(71);

  DecodeView view(*cv);
  for (int j = 0; j < 2000; ++j) {
    const size_t i = rng.UniformInt(kM);
    const uint64_t d = 1 + rng.UniformInt(50);
    view.Increment(i, d);
    ref->Increment(i, d);
  }
  view.Flush();
  // After Flush the backing is current even though the view stays open.
  for (size_t i = 0; i < kM; ++i) {
    ASSERT_EQ(cv->Get(i), ref->Get(i)) << GetParam().name << " " << i;
  }
  // The view remains usable after Flush.
  view.Increment(0, 5);
  ref->Increment(0, 5);
  view.Flush();
  EXPECT_EQ(cv->Get(0), ref->Get(0));
}

INSTANTIATE_TEST_SUITE_P(AllBackings, DecodeViewBackingTest,
                         ::testing::ValuesIn(kBackings),
                         [](const auto& param_info) {
                           return param_info.param.name;
                         });

// --- grouped-backing lifecycle: rebuild and widening -----------------------

TEST(DecodeViewCompactTest, DifferentialHoldsAfterForcedRebuild) {
  constexpr size_t kM = 333;
  CompactCounterVector::Options opt;
  opt.group_size = 16;
  CompactCounterVector cv(kM, opt);
  auto model = SeedMixedValues(cv, 81);

  cv.ForceRebuild();
  ASSERT_GE(cv.rebuild_count(), 1u);

  std::vector<uint64_t> idx(kM), got(kM);
  for (size_t i = 0; i < kM; ++i) idx[i] = kM - 1 - i;  // reverse order
  cv.GetMany(idx.data(), kM, got.data());
  for (size_t i = 0; i < kM; ++i) ASSERT_EQ(got[i], model[kM - 1 - i]);

  cv.DecodeBlock(0, kM, got.data());
  for (size_t i = 0; i < kM; ++i) ASSERT_EQ(got[i], model[i]);
  EXPECT_TRUE(cv.CheckInvariants().ok());
}

TEST(DecodeViewCompactTest, DifferentialHoldsAcrossWideningStream) {
  // Repeated doubling widens counters step by step, exercising the in-group
  // shift, push-to-slack and rebuild paths between differential checks.
  constexpr size_t kM = 128;
  CompactCounterVector::Options opt;
  opt.group_size = 8;
  CompactCounterVector cv(kM, opt);
  std::vector<uint64_t> model(kM, 0);
  Xoshiro256 rng(91);

  for (int round = 0; round < 24; ++round) {
    for (int j = 0; j < 64; ++j) {
      const size_t i = rng.UniformInt(kM);
      const uint64_t d =
          uint64_t{1} << rng.UniformInt(static_cast<uint64_t>(round) / 2 + 1);
      cv.Increment(i, d);
      model[i] += d;
    }
    std::vector<uint64_t> got(kM);
    cv.DecodeBlock(0, kM, got.data());
    for (size_t i = 0; i < kM; ++i) {
      ASSERT_EQ(got[i], model[i]) << "round " << round << " counter " << i;
    }
    ASSERT_TRUE(cv.CheckInvariants().ok()) << "round " << round;
  }
}

TEST(DecodeViewSerialScanTest, DifferentialHoldsAcrossWideningStream) {
  constexpr size_t kM = 96;
  SerialScanCounterVector::Options opt;
  opt.group_size = 12;
  SerialScanCounterVector cv(kM, opt);
  std::vector<uint64_t> model(kM, 0);
  Xoshiro256 rng(101);

  for (int round = 0; round < 16; ++round) {
    std::vector<uint64_t> values(kM);
    for (size_t i = 0; i < kM; ++i) {
      values[i] = model[i] + rng.UniformInt(uint64_t{1} << (round + 1));
    }
    cv.EncodeBlock(0, kM, values.data());
    model = values;
    std::vector<uint64_t> got(kM);
    cv.GetMany(nullptr, 0, got.data());  // n = 0 is a no-op
    cv.DecodeBlock(0, kM, got.data());
    for (size_t i = 0; i < kM; ++i) {
      ASSERT_EQ(got[i], model[i]) << "round " << round << " counter " << i;
    }
    ASSERT_TRUE(cv.CheckInvariants().ok()) << "round " << round;
  }
}

// --- write-gating ----------------------------------------------------------

TEST(DecodeViewGatingTest, StickyFixedVectorRejectsWritableViews) {
  FixedWidthCounterVector sticky(64, 4, /*sticky_saturation=*/true);
  EXPECT_FALSE(sticky.SupportsDecodedWrites());
  EXPECT_DEATH({ DecodeView view(sticky); }, "cannot be buffered");

  // Read-only views are fine on a sticky vector.
  const FixedWidthCounterVector& ccv = sticky;
  DecodeView view(ccv);
  EXPECT_EQ(view.Get(0), 0u);
}

TEST(DecodeViewGatingTest, NonStickyBackingsSupportDecodedWrites) {
  EXPECT_TRUE(FixedWidthCounterVector(8, 64).SupportsDecodedWrites());
  EXPECT_TRUE(CompactCounterVector(8).SupportsDecodedWrites());
  EXPECT_TRUE(SerialScanCounterVector(8).SupportsDecodedWrites());
}

// --- saturation-tally equivalence on a narrow backing ----------------------

TEST(DecodeViewSaturationTest, ViewTalliesClampsLikeScalarOps) {
  FixedWidthCounterVector cv(32, 4);  // max value 15
  FixedWidthCounterVector ref(32, 4);
  {
    DecodeView view(cv);
    for (size_t i = 0; i < 32; ++i) {
      view.Increment(i, 10);
      ref.Increment(i, 10);
      view.Increment(i, 10);  // clamps at 15
      ref.Increment(i, 10);
      view.Decrement(i, 20);  // clamps at 0
      ref.Decrement(i, 20);
      view.Set(i, 99);  // clamps at 15
      ref.Set(i, 99);
    }
  }
  EXPECT_EQ(cv.saturation().saturation_clamps,
            ref.saturation().saturation_clamps);
  EXPECT_EQ(cv.saturation().underflow_clamps,
            ref.saturation().underflow_clamps);
  for (size_t i = 0; i < 32; ++i) EXPECT_EQ(cv.Get(i), ref.Get(i));
}

}  // namespace
}  // namespace sbf
