#include <gtest/gtest.h>

#include <set>

#include "db/iceberg.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

SbfOptions MakeOptions(uint64_t m, uint32_t k, uint64_t seed) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  return options;
}

TEST(IcebergEngineTest, NoFalseNegativesAtAnyThreshold) {
  IcebergEngine engine(MakeOptions(4000, 5, 1));
  const Multiset data = MakeZipfMultiset(500, 20000, 1.0, 3);
  for (uint64_t key : data.stream) engine.Observe(key);

  for (uint64_t threshold : {2ull, 10ull, 100ull, 1000ull}) {
    const auto heavy = engine.Query(data.keys, threshold);
    const std::set<uint64_t> heavy_set(heavy.begin(), heavy.end());
    for (size_t i = 0; i < data.keys.size(); ++i) {
      if (data.freqs[i] >= threshold) {
        ASSERT_TRUE(heavy_set.contains(data.keys[i]))
            << "threshold " << threshold;
      }
    }
  }
}

TEST(IcebergEngineTest, AdHocThresholdNeedsNoRescan) {
  // The defining feature: the same engine answers for any threshold.
  IcebergEngine engine(MakeOptions(3000, 5, 5));
  const Multiset data = MakeZipfMultiset(300, 10000, 1.2, 7);
  for (uint64_t key : data.stream) engine.Observe(key);

  const auto at_100 = engine.Query(data.keys, 100);
  const auto at_10 = engine.Query(data.keys, 10);
  EXPECT_LT(at_100.size(), at_10.size());
  // Monotonicity: everything heavy at 100 is heavy at 10.
  const std::set<uint64_t> at_10_set(at_10.begin(), at_10.end());
  for (uint64_t key : at_100) EXPECT_TRUE(at_10_set.contains(key));
}

TEST(IcebergEngineTest, FalsePositiveRateIsSmall) {
  IcebergEngine engine(MakeOptions(5000, 5, 9));  // gamma = 0.5
  const Multiset data = MakeZipfMultiset(500, 30000, 1.0, 11);
  for (uint64_t key : data.stream) engine.Observe(key);

  const uint64_t threshold = 60;
  const auto reported = engine.Query(data.keys, threshold);
  size_t truly_heavy = 0;
  for (uint64_t f : data.freqs) truly_heavy += (f >= threshold);
  // Figure 4: iceberg errors are a small subset of Bloom errors.
  EXPECT_LE(reported.size(), truly_heavy + data.keys.size() / 20);
  EXPECT_GE(reported.size(), truly_heavy);
}

TEST(IcebergEngineTest, StreamingTriggerFires) {
  IcebergEngine engine(MakeOptions(10000, 5, 13));
  bool fired = false;
  for (int i = 0; i < 50; ++i) {
    fired = engine.Observe(42, /*trigger_threshold=*/20);
    if (i < 19) {
      ASSERT_FALSE(fired) << i;
    }
  }
  EXPECT_TRUE(fired);
  // No trigger threshold -> never fires.
  EXPECT_FALSE(engine.Observe(42, 0));
}

TEST(MultiscanIcebergTest, ExactResultAfterVerification) {
  const Multiset data = MakeZipfMultiset(400, 20000, 1.1, 15);
  MultiscanIceberg multiscan({{.buckets = 512, .k = 1},
                              {.buckets = 256, .k = 1}},
                             /*threshold=*/50, 17);
  const auto result = multiscan.Run(data);

  std::set<uint64_t> expected;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    if (data.freqs[i] >= 50) expected.insert(data.keys[i]);
  }
  const std::set<uint64_t> reported(result.heavy_keys.begin(),
                                    result.heavy_keys.end());
  EXPECT_EQ(reported, expected);
  EXPECT_EQ(result.scans, 3u);  // 2 filter stages + verification
  EXPECT_EQ(result.candidates, reported.size() + result.false_candidates);
}

TEST(MultiscanIcebergTest, SecondStageShrinksCandidates) {
  const Multiset data = MakeZipfMultiset(600, 30000, 1.0, 19);
  MultiscanIceberg one_stage({{.buckets = 256, .k = 1}}, 50, 21);
  MultiscanIceberg two_stage(
      {{.buckets = 256, .k = 1}, {.buckets = 128, .k = 1}}, 50, 21);
  const auto first = one_stage.Run(data);
  const auto second = two_stage.Run(data);
  EXPECT_LE(second.candidates, first.candidates);
  EXPECT_EQ(
      std::set<uint64_t>(first.heavy_keys.begin(), first.heavy_keys.end()),
      std::set<uint64_t>(second.heavy_keys.begin(), second.heavy_keys.end()));
}

TEST(MultiscanIcebergTest, ThresholdChangeRequiresNewRun) {
  // Structural contrast with the SBF engine: a new threshold means new
  // filters and new scans (the scans counter proves the cost).
  const Multiset data = MakeZipfMultiset(200, 8000, 1.0, 23);
  MultiscanIceberg at_50({{.buckets = 256, .k = 1}}, 50, 25);
  MultiscanIceberg at_20({{.buckets = 256, .k = 1}}, 20, 25);
  const auto first = at_50.Run(data);
  const auto second = at_20.Run(data);
  EXPECT_EQ(first.scans + second.scans, 4u);
  EXPECT_GE(second.heavy_keys.size(), first.heavy_keys.size());
}

}  // namespace
}  // namespace sbf
