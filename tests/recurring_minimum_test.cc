#include <gtest/gtest.h>

#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "util/metrics.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

RecurringMinimumOptions MakeOptions(uint64_t primary_m, uint64_t secondary_m,
                                    uint32_t k, uint64_t seed = 1,
                                    bool marker = false) {
  RecurringMinimumOptions options;
  options.primary_m = primary_m;
  options.secondary_m = secondary_m;
  options.k = k;
  options.seed = seed;
  options.use_marker_filter = marker;
  options.backing = CounterBacking::kFixed64;
  return options;
}

class RmMarkerTest : public ::testing::TestWithParam<bool> {};

TEST_P(RmMarkerTest, EstimateIsUpperBound) {
  RecurringMinimumSbf filter(MakeOptions(2000, 1000, 5, 3, GetParam()));
  const Multiset data = MakeZipfMultiset(400, 10000, 0.5, 7);
  for (uint64_t key : data.stream) filter.Insert(key);
  // Late detection of single-minimum events can in rare cases underestimate
  // (the gap Section 3.3.1's trapping refinement targets); the paper's
  // experiments observe no false negatives, so we allow at most a sliver.
  size_t false_negatives = 0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    if (filter.Estimate(data.keys[i]) < data.freqs[i]) ++false_negatives;
  }
  EXPECT_LE(false_negatives, data.keys.size() / 20);
}

TEST_P(RmMarkerTest, ExactUnderLightLoad) {
  RecurringMinimumSbf filter(MakeOptions(50000, 25000, 5, 5, GetParam()));
  for (uint64_t key = 1; key <= 40; ++key) filter.Insert(key, key * 2);
  for (uint64_t key = 1; key <= 40; ++key) {
    ASSERT_EQ(filter.Estimate(key), key * 2);
  }
}

TEST_P(RmMarkerTest, DeletionsSupportedWithoutFalseNegatives) {
  RecurringMinimumSbf filter(MakeOptions(1500, 750, 5, 9, GetParam()));
  const Multiset data = MakeZipfMultiset(300, 8000, 0.5, 11);
  for (uint64_t key : data.stream) filter.Insert(key);
  // Delete 40% of each key's occurrences.
  std::vector<uint64_t> remaining(data.keys.size());
  for (size_t i = 0; i < data.keys.size(); ++i) {
    const uint64_t cut = data.freqs[i] * 2 / 5;
    filter.Remove(data.keys[i], cut);
    remaining[i] = data.freqs[i] - cut;
  }
  size_t false_negatives = 0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    if (filter.Estimate(data.keys[i]) < remaining[i]) ++false_negatives;
  }
  EXPECT_LE(false_negatives, data.keys.size() / 20);
}

INSTANTIATE_TEST_SUITE_P(MarkerOnOff, RmMarkerTest, ::testing::Bool(),
                         [](const auto& param_info) {
                           return param_info.param ? "WithMarker" : "NoMarker";
                         });

TEST(RecurringMinimumTest, Table1SettingBeatsMinimumSelection) {
  // The Table 1 setting: primary at gamma = 0.7 (n = 1000, k = 5,
  // m = 7143), secondary of half that size. RM's error ratio must come in
  // clearly under the primary-only Minimum Selection error. (Table 1's 18x
  // is the paper's *model* gain, which ignores late-detection inflation;
  // the measured gain in its Figure 6 — and here — is in the 2-3x range.)
  ErrorStats ms_stats, rm_stats;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Multiset data = MakeZipfMultiset(1000, 50000, 0.5, seed * 13);

    SbfOptions ms_options;
    ms_options.m = 7143;
    ms_options.k = 5;
    ms_options.seed = seed * 31;
    ms_options.backing = CounterBacking::kFixed64;
    SpectralBloomFilter ms(ms_options);

    RecurringMinimumOptions rm_options;
    rm_options.primary_m = 7143;
    rm_options.secondary_m = 3571;
    rm_options.k = 5;
    rm_options.seed = seed * 31;
    rm_options.backing = CounterBacking::kFixed64;
    RecurringMinimumSbf rm(rm_options);

    for (uint64_t key : data.stream) {
      ms.Insert(key);
      rm.Insert(key);
    }
    for (size_t i = 0; i < data.keys.size(); ++i) {
      ms_stats.Record(ms.Estimate(data.keys[i]), data.freqs[i]);
      rm_stats.Record(rm.Estimate(data.keys[i]), data.freqs[i]);
    }
  }
  EXPECT_LT(rm_stats.ErrorRatio() * 1.5, ms_stats.ErrorRatio());
  // And no false negatives under insert-only workloads.
  EXPECT_EQ(rm_stats.num_false_negatives(), 0u);
}

TEST(RecurringMinimumTest, EqualTotalBudgetStaysCompetitive) {
  // At the same overall memory (primary 4/5, secondary 1/5) the primary
  // runs at 1.25x the gamma of the equivalent MS filter; RM must claw back
  // most of that handicap — within 3x of MS, and better than its own
  // primary minimum alone. (In our implementation RM does not actually
  // overtake equal-budget MS — see EXPERIMENTS.md; its value is deletion
  // support at near-MS accuracy, unlike MI.)
  const Multiset data = MakeZipfMultiset(1000, 50000, 0.5, 13);
  SbfOptions ms_options;
  ms_options.m = 5000;
  ms_options.k = 5;
  ms_options.seed = 31;
  ms_options.backing = CounterBacking::kFixed64;
  SpectralBloomFilter ms(ms_options);
  RecurringMinimumSbf rm = RecurringMinimumSbf::WithTotalBudget(5000, 5, 31);
  for (uint64_t key : data.stream) {
    ms.Insert(key);
    rm.Insert(key);
  }
  ErrorStats ms_stats, rm_stats, primary_stats;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ms_stats.Record(ms.Estimate(data.keys[i]), data.freqs[i]);
    rm_stats.Record(rm.Estimate(data.keys[i]), data.freqs[i]);
    primary_stats.Record(rm.primary().Estimate(data.keys[i]), data.freqs[i]);
  }
  EXPECT_LT(rm_stats.ErrorRatio(), 3.0 * ms_stats.ErrorRatio());
  EXPECT_LT(rm_stats.ErrorRatio(), primary_stats.ErrorRatio());
}

TEST(RecurringMinimumTest, MovesOnlySingleMinimumItems) {
  RecurringMinimumSbf filter(MakeOptions(4000, 2000, 5, 17));
  // A lone item always has a recurring minimum -> never moved.
  filter.Insert(123, 50);
  EXPECT_EQ(filter.moved_to_secondary(), 0u);
}

TEST(RecurringMinimumTest, SecondaryTracksSuspectedErrors) {
  RecurringMinimumSbf filter(MakeOptions(300, 150, 5, 19));
  const Multiset data = MakeZipfMultiset(400, 8000, 0.5, 23);
  for (uint64_t key : data.stream) filter.Insert(key);
  // At gamma ~ 6.7 many items have single minima; some must move.
  EXPECT_GT(filter.moved_to_secondary(), 0u);
}

TEST(RecurringMinimumTest, WithTotalBudgetSplitsFourToOne) {
  auto filter = RecurringMinimumSbf::WithTotalBudget(1500, 5);
  EXPECT_EQ(filter.primary().m(), 1200u);
  EXPECT_EQ(filter.secondary().m(), 300u);
}

TEST(RecurringMinimumTest, MarkerFilterAddsMemory) {
  RecurringMinimumSbf plain(MakeOptions(1000, 500, 5, 1, false));
  RecurringMinimumSbf marked(MakeOptions(1000, 500, 5, 1, true));
  EXPECT_GT(marked.MemoryUsageBits(), plain.MemoryUsageBits());
  EXPECT_TRUE(marked.marker().has_value());
  EXPECT_FALSE(plain.marker().has_value());
}

TEST(RecurringMinimumTest, UpdateViaRemoveInsert) {
  // Updates = delete + insert (Section 2.2); estimates stay one-sided.
  RecurringMinimumSbf filter(MakeOptions(2000, 1000, 5, 29));
  filter.Insert(7, 10);
  filter.Remove(7, 10);
  filter.Insert(7, 25);
  EXPECT_GE(filter.Estimate(7), 25u);
}

TEST(RecurringMinimumTest, SlidingDeletionStress) {
  RecurringMinimumSbf filter(MakeOptions(1000, 500, 4, 37));
  const Multiset data = MakeZipfMultiset(200, 6000, 1.0, 41);
  std::vector<uint64_t> live(data.keys.size(), 0);
  size_t cursor = 0;
  std::vector<size_t> key_index(1000);
  for (size_t i = 0; i < data.keys.size(); ++i) key_index[data.keys[i]] = i;

  // Insert the stream with a lag-2000 deletion window.
  for (; cursor < data.stream.size(); ++cursor) {
    filter.Insert(data.stream[cursor]);
    ++live[key_index[data.stream[cursor]]];
    if (cursor >= 2000) {
      const uint64_t old = data.stream[cursor - 2000];
      filter.Remove(old);
      --live[key_index[old]];
    }
  }
  size_t false_negatives = 0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    if (filter.Estimate(data.keys[i]) < live[i]) ++false_negatives;
  }
  // Heavy churn amplifies the late-detection window of the marker-less
  // algorithm; the bound is loose on purpose.
  EXPECT_LE(false_negatives, data.keys.size() / 10);
}

}  // namespace
}  // namespace sbf
