// Seeded allocation-reachability violations for sbf_analyze.py
// --self-test: this file plays the role of a kernel header whose entry
// point reaches allocations two calls deep. Do not fix — the self-test
// asserts both allocation sites are caught with a chain naming
// KernelEntry.
#ifndef SBF_TESTS_ANALYZER_FIXTURES_ALLOC_VIOLATION_H_
#define SBF_TESTS_ANALYZER_FIXTURES_ALLOC_VIOLATION_H_

#include <cstdint>
#include <vector>

namespace fixture {

// Depth 2: the allocating std:: member call.
inline void StashOverflow(std::vector<uint64_t>& out, uint64_t v) {
  out.push_back(v);  // seeded: std member allocation
}

// Depth 2: raw operator new.
inline uint64_t* GrabScratch(size_t n) {
  return new uint64_t[n];  // seeded: operator new
}

// Depth 1: innocent-looking forwarding layer.
inline void Forward(std::vector<uint64_t>& out, uint64_t v) {
  StashOverflow(out, v);
}

// The "kernel entry point": allocation-free at a glance, allocating via
// the call graph.
inline uint64_t KernelEntry(std::vector<uint64_t>& out, const uint64_t* keys,
                            size_t n) {
  uint64_t acc = 0;
  uint64_t* scratch = GrabScratch(n);
  for (size_t i = 0; i < n; ++i) {
    scratch[i] = keys[i] * 0x9e3779b97f4a7c15ull;
    acc ^= scratch[i];
    if ((scratch[i] & 7) == 0) Forward(out, scratch[i]);
  }
  delete[] scratch;
  return acc;
}

}  // namespace fixture

#endif  // SBF_TESTS_ANALYZER_FIXTURES_ALLOC_VIOLATION_H_
