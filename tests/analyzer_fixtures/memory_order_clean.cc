// False-positive canary for sbf_analyze.py's memory-order check: every
// atomic op here spells its order, pairs its release with an acquire, and
// stays off seq_cst. The self-test asserts ZERO findings on this file.

#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<uint64_t> counter{0};
std::atomic<bool> ready{false};
std::atomic<uint64_t> slot{0};

void Producer(uint64_t v) {
  slot.store(v, std::memory_order_relaxed);
  // Publication: pairs with the acquire load in Consumer().
  ready.store(true, std::memory_order_release);
  counter.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Consumer() {
  if (!ready.load(std::memory_order_acquire)) return 0;
  uint64_t expected = 0;
  // Both orders explicit, including the failure side.
  slot.compare_exchange_strong(expected, 1, std::memory_order_acq_rel,
                               std::memory_order_acquire);
  return expected + counter.load(std::memory_order_relaxed);
}

}  // namespace fixture
