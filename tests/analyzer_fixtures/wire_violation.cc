// Seeded wire-ownership violations for sbf_analyze.py --self-test: raw
// FILE* byte I/O in a translation unit that (per the self-test harness)
// lives outside src/io/. The stdout write at the end must NOT be flagged —
// console output is exempt, matching sbf_lint rule 1. Do not fix.

#include <cstdio>

namespace fixture {

bool DumpBytes(const char* path, const unsigned char* data, unsigned n) {
  FILE* f = std::fopen(path, "wb");  // seeded: fopen outside src/io/
  if (f == nullptr) return false;
  unsigned long wrote = std::fwrite(data, 1, n, f);  // seeded: fwrite
  std::fclose(f);  // seeded: fclose
  return wrote == n;
}

void Banner() {
  // Exempt: console output, not wire I/O.
  std::fwrite("sbf\n", 1, 4, stdout);
}

}  // namespace fixture
