// Seeded -Wthread-safety violation for scripts/check_thread_safety.py:
// a SBF_GUARDED_BY member mutated without holding its mutex, plus a
// REQUIRES function called lock-free. This file must FAIL to compile
// under clang -Wthread-safety -Werror=thread-safety; the gate asserts the
// failure carries a thread-safety diagnostic. Do not fix.

#include <cstdint>

#include "util/thread_annotations.h"

namespace fixture {

class Tally {
 public:
  void Add(uint64_t v) {
    total_ += v;  // seeded: writes a guarded member without mu_
  }

  uint64_t Drain() SBF_REQUIRES(mu_) {
    uint64_t t = total_;
    total_ = 0;
    return t;
  }

  uint64_t UnlockedDrain() {
    return Drain();  // seeded: calls a REQUIRES(mu_) function lock-free
  }

 private:
  sbf::util::Mutex mu_;
  uint64_t total_ SBF_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
