// Seeded memory-order violations for sbf_analyze.py --self-test. Four
// distinct bugs, one per check shape. Do not fix — the self-test asserts
// each one is caught.

#include <atomic>
#include <cstdint>

namespace fixture {

std::atomic<uint64_t> gate{0};
std::atomic<uint64_t> turns{0};

uint64_t Broken() {
  // Bug 1: implicit memory order (defaults to seq_cst silently).
  gate.fetch_add(1);

  // Bug 2: rogue seq_cst — (turns, load) is not on the allowlist.
  uint64_t t = turns.load(std::memory_order_seq_cst);

  // Bug 3: unpaired release — no acquire-or-stronger load of `gate`
  // anywhere in this TU, so this publication synchronizes with nothing.
  gate.store(t, std::memory_order_release);

  // Bug 4: CAS spelling only the success order; the implicit failure
  // order is derived and easy to get wrong — it must be explicit.
  uint64_t expected = t;
  turns.compare_exchange_strong(expected, t + 1, std::memory_order_acq_rel);

  // Keeps `turns` pairing-clean (release write above is on `gate` only;
  // turns has no release write), so exactly the four bugs above fire.
  return turns.load(std::memory_order_acquire) + expected;
}

}  // namespace fixture
