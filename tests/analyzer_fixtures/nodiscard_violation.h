// Seeded [[nodiscard]] coverage violation for sbf_analyze.py --self-test:
// a public Status-returning function with no discard protection, next to
// two covered controls. Do not fix — the self-test asserts exactly
// Uncovered() is flagged.
#ifndef SBF_TESTS_ANALYZER_FIXTURES_NODISCARD_VIOLATION_H_
#define SBF_TESTS_ANALYZER_FIXTURES_NODISCARD_VIOLATION_H_

namespace fixture {

// Bare status type with NO class-level [[nodiscard]] (unlike the real
// sbf::Status), so coverage must come from the functions.
class Status {
 public:
  bool ok() const { return code_ == 0; }

 private:
  int code_ = 0;
};

// Class-level [[nodiscard]]: functions returning it are covered for free.
class [[nodiscard]] CheckedStatus {
 public:
  bool ok() const { return code_ == 0; }

 private:
  int code_ = 0;
};

// Seeded violation: public, returns Status, nothing stops the caller from
// dropping it.
Status Uncovered();

// Control 1: covered by the function attribute.
[[nodiscard]] Status CoveredByFunction();

// Control 2: covered by the returned class's attribute.
CheckedStatus CoveredByClass();

class Store {
 public:
  // Seeded violation: public method, same bug.
  Status UncoveredMethod();

 private:
  // Not a violation: private methods may drop-check internally.
  Status PrivateHelper();
};

}  // namespace fixture

#endif  // SBF_TESTS_ANALYZER_FIXTURES_NODISCARD_VIOLATION_H_
