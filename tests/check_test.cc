// Death-test coverage for the precondition macros in util/check.h.
//
// SBF_CHECK / SBF_CHECK_MSG always abort on a false condition. The
// debug-only forms SBF_DCHECK / SBF_DCHECK_MSG flip behaviour on NDEBUG,
// which the ambient build type controls — so both expansions are exercised
// through helper TUs compiled with NDEBUG explicitly forced off
// (check_test_debug_tu.cc) and on (check_test_ndebug_tu.cc).

#include "util/check.h"

#include <gtest/gtest.h>

#include "check_test_paths.h"

namespace sbf {
namespace {

using ::sbf::check_test::DebugDcheckFails;
using ::sbf::check_test::DebugDcheckMsgFails;
using ::sbf::check_test::NdebugDcheckEvaluations;
using ::sbf::check_test::NdebugDcheckIsNoOp;
using ::sbf::check_test::NdebugDcheckMsgIsNoOp;

TEST(CheckDeathTest, CheckAbortsWithConditionAndLocation) {
  EXPECT_DEATH(SBF_CHECK(2 + 2 == 5), "SBF_CHECK failed: 2 \\+ 2 == 5");
  EXPECT_DEATH(SBF_CHECK(false), "check_test\\.cc");
}

TEST(CheckDeathTest, CheckMsgAbortsWithMessage) {
  EXPECT_DEATH(SBF_CHECK_MSG(false, "the extra context"),
               "SBF_CHECK failed: false \\(the extra context\\)");
}

TEST(CheckDeathTest, CheckMsgAcceptsRuntimeMessage) {
  const std::string message = "runtime-built message";
  EXPECT_DEATH(SBF_CHECK_MSG(1 > 2, message.c_str()),
               "runtime-built message");
}

TEST(CheckTest, PassingChecksReturnNormally) {
  SBF_CHECK(true);
  SBF_CHECK_MSG(true, "never printed");
  SBF_DCHECK(true);
  SBF_DCHECK_MSG(true, "never printed");
}

TEST(CheckDeathTest, ArmedDcheckAborts) {
  EXPECT_DEATH(DebugDcheckFails(), "SBF_CHECK failed: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, ArmedDcheckMsgAborts) {
  EXPECT_DEATH(DebugDcheckMsgFails(), "armed dcheck message");
}

TEST(CheckTest, DisarmedDcheckIsNoOp) {
  // The NDEBUG expansions must return normally on a false condition...
  NdebugDcheckIsNoOp();
  NdebugDcheckMsgIsNoOp();
}

TEST(CheckTest, DisarmedDcheckDoesNotEvaluateArguments) {
  // ...and must not evaluate the condition at all: a side-effecting
  // condition passed to the disarmed macros runs zero times.
  EXPECT_EQ(NdebugDcheckEvaluations(), 0u);
}

}  // namespace
}  // namespace sbf
