// Differential property suite: independent implementations of the same
// function must agree on random operation sequences. This is the
// strongest guard against silent corruption in the compact storages and
// the filter algebra.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/blocked_sbf.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "sai/select_index.h"
#include "sai/string_array_index.h"
#include "util/random.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

// --- SBF backings under adversarial op mixes -------------------------------

struct OpMix {
  uint64_t seed;
  int ops;
  uint64_t key_space;
  int remove_percent;
};

class SbfBackingDifferentialTest : public ::testing::TestWithParam<OpMix> {};

TEST_P(SbfBackingDifferentialTest, AllBackingsAgree) {
  const OpMix mix = GetParam();
  std::vector<SpectralBloomFilter> filters;
  for (CounterBacking backing :
       {CounterBacking::kFixed64, CounterBacking::kCompact,
        CounterBacking::kSerialScan}) {
    SbfOptions options;
    options.m = 700;
    options.k = 5;
    options.seed = 77;
    options.backing = backing;
    filters.emplace_back(options);
  }

  Xoshiro256 rng(mix.seed);
  std::map<uint64_t, uint64_t> live;
  for (int op = 0; op < mix.ops; ++op) {
    const uint64_t key = rng.UniformInt(mix.key_space);
    const bool remove = static_cast<int>(rng.UniformInt(100)) <
                            mix.remove_percent &&
                        live[key] > 0;
    const uint64_t count = rng.UniformInt(remove ? live[key] : 9) + 1;
    for (auto& filter : filters) {
      if (remove) {
        filter.Remove(key, count);
      } else {
        filter.Insert(key, count);
      }
    }
    if (remove) {
      live[key] -= count;
    } else {
      live[key] += count;
    }
  }
  for (uint64_t key = 0; key < mix.key_space; ++key) {
    const uint64_t reference = filters[0].Estimate(key);
    ASSERT_GE(reference, live[key]) << key;  // one-sided vs ground truth
    for (size_t f = 1; f < filters.size(); ++f) {
      ASSERT_EQ(filters[f].Estimate(key), reference)
          << "backing " << f << " key " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SbfBackingDifferentialTest,
    ::testing::Values(OpMix{1, 4000, 100, 0},    // insert-only, hot keys
                      OpMix{2, 4000, 5000, 0},   // insert-only, sparse keys
                      OpMix{3, 6000, 200, 40},   // heavy churn
                      OpMix{4, 6000, 50, 49},    // tiny key space, max churn
                      OpMix{5, 2000, 2000, 25}),  // mixed
    [](const auto& param_info) { return "Mix" + std::to_string(param_info.param.seed); });

// --- saturated estimates never under-report the clamp ----------------------

// Drive every backing x policy past the 32-bit backing's range (the 64-bit
// backings past 2^64) and check the graceful-degradation contract: a
// saturated counter reads the backing maximum — never less, never a wrap
// to a small value — so threshold queries keep their no-false-negative
// guarantee up to the clamp, and the event is tallied for Health().
TEST(SaturationDifferentialTest, SaturatedEstimateReadsClampAcrossBackings) {
  const uint64_t kHuge = ~uint64_t{0} - 3;  // two inserts overflow any width
  for (CounterBacking backing :
       {CounterBacking::kFixed64, CounterBacking::kFixed32,
        CounterBacking::kCompact, CounterBacking::kSerialScan}) {
    for (SbfPolicy policy :
         {SbfPolicy::kMinimumSelection, SbfPolicy::kMinimalIncrease}) {
      SbfOptions options;
      options.m = 64;
      options.k = 3;
      options.seed = 31;
      options.backing = backing;
      options.policy = policy;
      SpectralBloomFilter filter(options);
      filter.Insert(9, kHuge);
      filter.Insert(9, kHuge);

      const uint64_t clamp = filter.counters().MaxValue();
      EXPECT_EQ(filter.Estimate(9), clamp)
          << CounterBackingName(backing) << " "
          << (policy == SbfPolicy::kMinimumSelection ? "MS" : "MI");
      EXPECT_GT(filter.saturation().saturation_clamps, 0u);

      // The rest of the filter still behaves: fresh keys insert and
      // estimate normally next to the pinned counters.
      filter.Insert(123, 4);
      EXPECT_GE(filter.Estimate(123), 4u);
    }
  }
}

TEST(SaturationDifferentialTest, RecurringMinimumSaturatesGracefully) {
  RecurringMinimumOptions options;
  options.primary_m = 80;
  options.secondary_m = 20;
  options.k = 3;
  options.backing = CounterBacking::kFixed32;
  RecurringMinimumSbf filter(options);
  const uint64_t kHuge = uint64_t{3} << 30;
  filter.Insert(9, kHuge);
  filter.Insert(9, kHuge);

  // Both inserts exceed the 32-bit range: the estimate reads the clamp
  // (never a wrapped small value), stays one-sided for every other key,
  // and the clamp events surface through saturation().
  EXPECT_EQ(filter.Estimate(9), (uint64_t{1} << 32) - 1);
  EXPECT_GT(filter.saturation().saturation_clamps, 0u);
  filter.Insert(55, 7);
  EXPECT_GE(filter.Estimate(55), 7u);
}

// --- blocked SBF with one block == flat SBF behaviour ----------------------

TEST(BlockedDifferentialTest, SingleBlockIsOneSidedAndLoadEquivalent) {
  // With block_size == m the blocked filter is an unsegmented SBF over the
  // same counters (different hash layout, same statistics). Check the
  // one-sided property and total load agreement.
  BlockedSbfOptions blocked_options;
  blocked_options.m = 2048;
  blocked_options.block_size = 2048;
  blocked_options.k = 5;
  blocked_options.seed = 5;
  blocked_options.backing = CounterBacking::kCompact;
  BlockedSbf blocked(blocked_options);

  const Multiset data = MakeZipfMultiset(300, 9000, 0.6, 9);
  for (uint64_t key : data.stream) blocked.Insert(key);
  EXPECT_EQ(blocked.BlockLoad(0), data.total() * 5);
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_GE(blocked.Estimate(data.keys[i]), data.freqs[i]);
  }
}

// --- static index implementations -------------------------------------------

TEST(IndexDifferentialTest, SaiAndSelectAgreeOnAdversarialLengths) {
  // Alternating minimal/maximal lengths, then a long run of each: worst
  // cases for chunk classification thresholds.
  std::vector<uint32_t> lengths;
  for (int i = 0; i < 3000; ++i) lengths.push_back(i % 2 == 0 ? 1 : 64);
  for (int i = 0; i < 3000; ++i) lengths.push_back(1);
  for (int i = 0; i < 500; ++i) lengths.push_back(64);

  StringArrayIndex sai(lengths);
  SelectIndex select(lengths);
  for (size_t i = 0; i <= lengths.size(); ++i) {
    ASSERT_EQ(sai.Offset(i), select.Offset(i)) << i;
  }
}

TEST(IndexDifferentialTest, RandomLengthsAcrossThresholdRegimes) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256 rng(seed * 1009);
    std::vector<uint32_t> lengths(2000);
    // Lognormal-ish lengths: many tiny, a few enormous.
    for (auto& len : lengths) {
      uint32_t bits = 1;
      while (bits < 60 && (rng.Next() & 1)) bits += bits;
      len = bits + static_cast<uint32_t>(rng.UniformInt(bits));
    }
    StringArrayIndex sai(lengths);
    SelectIndex select(lengths);
    for (size_t i = 0; i <= lengths.size(); i += 7) {
      ASSERT_EQ(sai.Offset(i), select.Offset(i))
          << "seed " << seed << " string " << i;
    }
  }
}

// --- RM against an exact oracle ---------------------------------------------

TEST(RmOracleTest, MarkerVariantNeverUndercountsUnderChurn) {
  RecurringMinimumOptions options;
  options.primary_m = 1200;
  options.secondary_m = 400;
  options.k = 5;
  options.seed = 3;
  options.backing = CounterBacking::kFixed64;
  options.use_marker_filter = true;
  RecurringMinimumSbf rm(options);

  Xoshiro256 rng(17);
  std::map<uint64_t, uint64_t> live;
  for (int op = 0; op < 20000; ++op) {
    const uint64_t key = rng.UniformInt(300);
    if (rng.UniformInt(3) == 0 && live[key] > 0) {
      rm.Remove(key);
      --live[key];
    } else {
      rm.Insert(key);
      ++live[key];
    }
  }
  size_t false_negatives = 0;
  for (const auto& [key, count] : live) {
    false_negatives += rm.Estimate(key) < count;
  }
  // The marker variant's only undercut path is a marker false positive
  // before the item's first move — essentially absent at this load.
  EXPECT_LE(false_negatives, 2u);
}

}  // namespace
}  // namespace sbf
