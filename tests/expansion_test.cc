// Online expansion (ExpandTo): growing a live filter must preserve every
// estimate bit-for-bit — both hash kinds locate each old counter's
// preimage set exactly, so the fold-based rebuild is lossless — and the
// ConcurrentSbf dual-write window must stay readable and one-sided while
// writers and readers race the migration.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/blocked_sbf.h"
#include "core/bloom_filter.h"
#include "core/concurrent_sbf.h"
#include "core/recurring_minimum.h"
#include "core/spectral_bloom_filter.h"
#include "util/random.h"

namespace sbf {
namespace {

constexpr uint64_t kProbeKeys = 10000;  // probe set for estimate equality

// --- SpectralBloomFilter: every backing x policy x hash kind ---------------

struct ExpandCase {
  CounterBacking backing;
  SbfPolicy policy;
  HashFamily::Kind hash_kind;
};

// gtest parameter names must be alphanumeric ("serial-scan" is not).
std::string SanitizedBackingName(CounterBacking backing) {
  std::string name = CounterBackingName(backing);
  name.erase(std::remove_if(name.begin(), name.end(),
                            [](unsigned char c) { return !std::isalnum(c); }),
             name.end());
  return name;
}

std::string CaseName(const ::testing::TestParamInfo<ExpandCase>& param_info) {
  std::string name = SanitizedBackingName(param_info.param.backing);
  name += param_info.param.policy == SbfPolicy::kMinimumSelection ? "_MS" : "_MI";
  name += param_info.param.hash_kind == HashFamily::Kind::kModuloMultiply
              ? "_MulShift"
              : "_DoubleMix";
  return name;
}

std::vector<ExpandCase> AllExpandCases() {
  std::vector<ExpandCase> cases;
  for (CounterBacking backing :
       {CounterBacking::kFixed64, CounterBacking::kFixed32,
        CounterBacking::kCompact, CounterBacking::kSerialScan}) {
    for (SbfPolicy policy :
         {SbfPolicy::kMinimumSelection, SbfPolicy::kMinimalIncrease}) {
      for (HashFamily::Kind kind : {HashFamily::Kind::kModuloMultiply,
                                    HashFamily::Kind::kDoubleMix}) {
        cases.push_back({backing, policy, kind});
      }
    }
  }
  return cases;
}

class SbfExpandTest : public ::testing::TestWithParam<ExpandCase> {};

TEST_P(SbfExpandTest, ProbesSurviveExpansionExactly) {
  const ExpandCase param = GetParam();
  SbfOptions options;
  options.m = 512;
  options.k = 5;
  options.seed = 42;
  options.backing = param.backing;
  options.policy = param.policy;
  options.hash_kind = param.hash_kind;
  SpectralBloomFilter filter(options);

  Xoshiro256 rng(9);
  for (int i = 0; i < 1500; ++i) {
    filter.Insert(rng.UniformInt(4000), rng.UniformInt(4) + 1);
  }
  std::vector<uint64_t> pre(kProbeKeys);
  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    pre[key] = filter.Estimate(key);
  }
  const uint64_t items = filter.total_items();

  ASSERT_TRUE(filter.ExpandTo(4 * 512).ok());
  EXPECT_EQ(filter.m(), 2048u);
  EXPECT_EQ(filter.total_items(), items);
  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    ASSERT_EQ(filter.Estimate(key), pre[key]) << "key " << key;
  }
}

TEST_P(SbfExpandTest, InsertsAfterExpansionStayOneSided) {
  const ExpandCase param = GetParam();
  SbfOptions options;
  options.m = 256;
  options.k = 4;
  options.seed = 7;
  options.backing = param.backing;
  options.policy = param.policy;
  options.hash_kind = param.hash_kind;
  SpectralBloomFilter filter(options);

  std::map<uint64_t, uint64_t> truth;
  Xoshiro256 rng(11);
  for (int i = 0; i < 600; ++i) {
    const uint64_t key = rng.UniformInt(900);
    filter.Insert(key, 2);
    truth[key] += 2;
  }
  ASSERT_TRUE(filter.ExpandTo(512).ok());
  for (int i = 0; i < 600; ++i) {
    const uint64_t key = rng.UniformInt(900);
    filter.Insert(key);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(filter.Estimate(key), count) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, SbfExpandTest,
                         ::testing::ValuesIn(AllExpandCases()), CaseName);

TEST(SbfExpandArgsTest, RejectsNonMultiples) {
  SpectralBloomFilter filter(100, 4);
  EXPECT_TRUE(filter.ExpandTo(100).ok());  // no-op
  EXPECT_EQ(filter.ExpandTo(150).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(filter.ExpandTo(50).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(filter.ExpandTo(0).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(filter.m(), 100u);
}

TEST(SbfExpandArgsTest, ExpansionPreservesFillAndSurvivesSerialization) {
  // The fold replicates every old counter across its whole preimage set,
  // so occupancy — and with it the estimated FPR of already-inserted
  // data — carries over exactly. Expansion buys headroom for *future*
  // inserts (which spread over c x more counters); it cannot retroactively
  // sharpen estimates whose collisions already happened.
  SpectralBloomFilter filter(128, 5);
  for (uint64_t key = 0; key < 200; ++key) filter.Insert(key);
  const double fill_before = filter.Health().fill_ratio;
  ASSERT_TRUE(filter.ExpandTo(1024).ok());
  EXPECT_DOUBLE_EQ(filter.Health().fill_ratio, fill_before);

  const std::vector<uint8_t> bytes = filter.Serialize();
  auto loaded = SpectralBloomFilter::Deserialize(bytes);
  ASSERT_TRUE(loaded.ok());
  for (uint64_t key = 0; key < 400; ++key) {
    EXPECT_EQ(loaded.value().Estimate(key), filter.Estimate(key));
  }
}

TEST(SbfExpandArgsTest, ExpandIfDegradedDoublesOverloadedFilter) {
  SbfOptions options;
  options.m = 64;
  options.k = 3;
  SpectralBloomFilter filter(options);
  for (uint64_t key = 0; key < 300; ++key) filter.Insert(key);
  ASSERT_EQ(filter.Health().state, HealthState::kDegraded);

  auto expanded = filter.ExpandIfDegraded();
  ASSERT_TRUE(expanded.ok());
  EXPECT_TRUE(expanded.value());
  EXPECT_EQ(filter.m(), 128u);

  // A lightly loaded filter reports healthy and is left alone.
  SpectralBloomFilter light(4096, 5);
  light.Insert(1);
  auto untouched = light.ExpandIfDegraded();
  ASSERT_TRUE(untouched.ok());
  EXPECT_FALSE(untouched.value());
  EXPECT_EQ(light.m(), 4096u);
}

// --- Bloom filter ----------------------------------------------------------

TEST(BloomExpandTest, MembershipSurvivesExpansionBothHashKinds) {
  for (HashFamily::Kind kind : {HashFamily::Kind::kModuloMultiply,
                                HashFamily::Kind::kDoubleMix}) {
    BloomFilter filter(512, 5, 3, kind);
    for (uint64_t key = 0; key < 120; ++key) filter.Add(key * 977);
    std::vector<bool> pre(kProbeKeys);
    for (uint64_t key = 0; key < kProbeKeys; ++key) {
      pre[key] = filter.Contains(key);
    }
    ASSERT_TRUE(filter.ExpandTo(2048).ok());
    EXPECT_EQ(filter.m(), 2048u);
    for (uint64_t key = 0; key < kProbeKeys; ++key) {
      ASSERT_EQ(filter.Contains(key), pre[key]) << "key " << key;
    }
    EXPECT_EQ(filter.ExpandTo(1000).code(), Status::Code::kInvalidArgument);
  }
}

// --- Blocked SBF -----------------------------------------------------------

TEST(BlockedExpandTest, ProbesSurviveExpansionExactly) {
  BlockedSbfOptions options;
  options.m = 512;
  options.block_size = 64;
  options.k = 4;
  options.seed = 21;
  BlockedSbf filter(options);

  Xoshiro256 rng(5);
  for (int i = 0; i < 900; ++i) {
    filter.Insert(rng.UniformInt(3000), rng.UniformInt(3) + 1);
  }
  std::vector<uint64_t> pre(kProbeKeys);
  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    pre[key] = filter.Estimate(key);
  }
  ASSERT_TRUE(filter.ExpandTo(2048).ok());
  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    ASSERT_EQ(filter.Estimate(key), pre[key]) << "key " << key;
  }
  EXPECT_EQ(filter.ExpandTo(2048 + 64).code(),
            Status::Code::kInvalidArgument);
}

// --- Recurring Minimum -----------------------------------------------------

TEST(RmExpandTest, ProbesSurviveExpansionWithAndWithoutMarker) {
  for (bool marker : {false, true}) {
    RecurringMinimumOptions options;
    options.primary_m = 400;
    options.secondary_m = 100;
    options.k = 4;
    options.seed = 3;
    options.use_marker_filter = marker;
    RecurringMinimumSbf filter(options);

    Xoshiro256 rng(13);
    std::map<uint64_t, uint64_t> live;
    for (int i = 0; i < 1200; ++i) {
      const uint64_t key = rng.UniformInt(800);
      if (live[key] > 0 && rng.UniformInt(5) == 0) {
        filter.Remove(key);
        --live[key];
      } else {
        filter.Insert(key);
        ++live[key];
      }
    }
    std::vector<uint64_t> pre(kProbeKeys);
    for (uint64_t key = 0; key < kProbeKeys; ++key) {
      pre[key] = filter.Estimate(key);
    }

    ASSERT_TRUE(filter.ExpandTo(1200, 300).ok());
    for (uint64_t key = 0; key < kProbeKeys; ++key) {
      ASSERT_EQ(filter.Estimate(key), pre[key])
          << "key " << key << " marker=" << marker;
    }

    // The expanded filter must serialize into a self-consistent frame (the
    // marker grows with the primary, which Deserialize pins).
    auto loaded = RecurringMinimumSbf::Deserialize(filter.Serialize());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    for (uint64_t key = 0; key < 800; ++key) {
      EXPECT_EQ(loaded.value().Estimate(key), filter.Estimate(key));
    }

    EXPECT_EQ(filter.ExpandTo(1300, 300).code(),
              Status::Code::kInvalidArgument);
    EXPECT_EQ(filter.ExpandTo(2400, 50).code(),
              Status::Code::kInvalidArgument);
  }
}

// --- ConcurrentSbf: quiescent expansion ------------------------------------

ConcurrentSbfOptions ConcurrentOptions(CounterBacking backing,
                                       SbfPolicy policy) {
  ConcurrentSbfOptions options;
  options.m = 4096;
  options.k = 4;
  options.num_shards = 8;
  options.seed = 99;
  options.backing = backing;
  options.policy = policy;
  return options;
}

class ConcurrentExpandTest
    : public ::testing::TestWithParam<std::pair<CounterBacking, SbfPolicy>> {};

TEST_P(ConcurrentExpandTest, QuiescentExpansionPreservesProbes) {
  const auto [backing, policy] = GetParam();
  ConcurrentSbf filter(ConcurrentOptions(backing, policy));
  Xoshiro256 rng(17);
  std::vector<uint64_t> keys(3000);
  for (auto& key : keys) key = rng.UniformInt(1u << 20);
  filter.InsertBatch(keys.data(), keys.size(), 2);

  std::vector<uint64_t> pre(kProbeKeys);
  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    pre[key] = filter.Estimate(key);
  }
  const uint64_t items = filter.TotalItems();

  ASSERT_TRUE(filter.ExpandTo(4 * 4096).ok());
  EXPECT_EQ(filter.options().m, 4u * 4096u);
  EXPECT_EQ(filter.shard_m(), 4u * 4096u / 8u);
  EXPECT_EQ(filter.TotalItems(), items);
  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    ASSERT_EQ(filter.Estimate(key), pre[key]) << "key " << key;
  }

  // The expanded filter round-trips the wire (Deserialize re-derives shard
  // sizes from the new m).
  auto loaded = ConcurrentSbf::Deserialize(filter.Serialize());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (uint64_t key = 0; key < 2000; ++key) {
    EXPECT_EQ(loaded.value().Estimate(key), filter.Estimate(key));
  }
}

TEST_P(ConcurrentExpandTest, MatchesSeriallyExpandedReference) {
  const auto [backing, policy] = GetParam();
  ConcurrentSbf filter(ConcurrentOptions(backing, policy));
  ConcurrentSbf reference(ConcurrentOptions(backing, policy));

  Xoshiro256 rng(23);
  std::vector<uint64_t> before(2000), after(2000);
  for (auto& key : before) key = rng.UniformInt(1u << 18);
  for (auto& key : after) key = rng.UniformInt(1u << 18);

  filter.InsertBatch(before.data(), before.size());
  ASSERT_TRUE(filter.ExpandTo(2 * 4096).ok());
  filter.InsertBatch(after.data(), after.size());

  reference.InsertBatch(before.data(), before.size());
  ASSERT_TRUE(reference.ExpandTo(2 * 4096).ok());
  reference.InsertBatch(after.data(), after.size());

  for (uint64_t key = 0; key < kProbeKeys; ++key) {
    ASSERT_EQ(filter.Estimate(key), reference.Estimate(key)) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, ConcurrentExpandTest,
    ::testing::Values(
        std::pair{CounterBacking::kFixed64, SbfPolicy::kMinimumSelection},
        std::pair{CounterBacking::kCompact, SbfPolicy::kMinimumSelection},
        std::pair{CounterBacking::kCompact, SbfPolicy::kMinimalIncrease}),
    [](const auto& param_info) {
      std::string name = SanitizedBackingName(param_info.param.first);
      name += param_info.param.second == SbfPolicy::kMinimumSelection ? "_MS"
                                                                : "_MI";
      return name;
    });

TEST(ConcurrentExpandArgsTest, RejectsShardMisalignedSizes) {
  ConcurrentSbfOptions options;
  options.m = 100;  // CeilDiv(100, 8) = 13, but CeilDiv(200, 8) = 25 != 26
  options.num_shards = 8;
  ConcurrentSbf filter(options);
  EXPECT_EQ(filter.ExpandTo(200).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(filter.ExpandTo(150).code(), Status::Code::kInvalidArgument);
  EXPECT_TRUE(filter.ExpandTo(100).ok());
}

// --- ConcurrentSbf: expansion racing writers and readers -------------------

// 8 writers + 8 readers race ExpandTo. Readers hold a preloaded ground
// truth and assert the one-sided guarantee never breaks — not before, not
// during, not after the dual-write window. Writers insert disjoint key
// slices so the post-join ground truth is exact.
void RaceExpansion(CounterBacking backing, SbfPolicy policy) {
  constexpr int kWriters = 8;
  constexpr int kReaders = 8;
  constexpr uint64_t kKeysPerWriter = 400;
  constexpr uint64_t kPreloaded = 512;

  ConcurrentSbfOptions options = ConcurrentOptions(backing, policy);
  ConcurrentSbf filter(options);

  // Preload: keys [0, kPreloaded) with count 3, fully quiesced.
  for (uint64_t key = 0; key < kPreloaded; ++key) filter.Insert(key, 3);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&filter, &stop, r] {
      Xoshiro256 rng(1000 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t key = rng.UniformInt(kPreloaded);
        const uint64_t estimate = filter.Estimate(key);
        // Preloaded counts never shrink: any estimate below the preload is
        // a torn read through the expansion window.
        ASSERT_GE(estimate, 3u) << "key " << key;
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&filter, w] {
      // Writer w owns keys [base, base + kKeysPerWriter).
      const uint64_t base = kPreloaded + w * kKeysPerWriter;
      for (uint64_t i = 0; i < kKeysPerWriter; ++i) {
        filter.Insert(base + i, 1 + (i % 3));
      }
    });
  }

  ASSERT_TRUE(filter.ExpandTo(4 * options.m).ok());

  for (int w = 0; w < kWriters; ++w) threads[kReaders + w].join();
  stop.store(true, std::memory_order_relaxed);
  for (int r = 0; r < kReaders; ++r) threads[r].join();

  // Post-join: estimates bound the exact per-key truth from above.
  uint64_t expected_items = kPreloaded * 3;
  for (uint64_t key = 0; key < kPreloaded; ++key) {
    EXPECT_GE(filter.Estimate(key), 3u) << "key " << key;
  }
  for (int w = 0; w < kWriters; ++w) {
    const uint64_t base = kPreloaded + w * kKeysPerWriter;
    for (uint64_t i = 0; i < kKeysPerWriter; ++i) {
      EXPECT_GE(filter.Estimate(base + i), 1 + (i % 3))
          << "key " << base + i;
      expected_items += 1 + (i % 3);
    }
  }
  EXPECT_EQ(filter.TotalItems(), expected_items);
  EXPECT_EQ(filter.options().m, 4 * options.m);
}

TEST(ConcurrentExpandRaceTest, LockFreePathStaysOneSided) {
  RaceExpansion(CounterBacking::kFixed64, SbfPolicy::kMinimumSelection);
}

TEST(ConcurrentExpandRaceTest, LockedPathStaysOneSided) {
  RaceExpansion(CounterBacking::kCompact, SbfPolicy::kMinimumSelection);
}

TEST(ConcurrentExpandRaceTest, LockedMinimalIncreasePathStaysOneSided) {
  RaceExpansion(CounterBacking::kCompact, SbfPolicy::kMinimalIncrease);
}

}  // namespace
}  // namespace sbf
