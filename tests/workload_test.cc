#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/random.h"
#include "workload/forest_cover.h"
#include "workload/multiset_stream.h"
#include "workload/zipf.h"

namespace sbf {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  for (double skew : {0.0, 0.5, 1.0, 2.0}) {
    ZipfDistribution zipf(500, skew);
    double sum = 0.0;
    for (uint64_t i = 1; i <= 500; ++i) sum += zipf.Probability(i);
    EXPECT_NEAR(sum, 1.0, 1e-9) << skew;
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfDistribution zipf(100, 0.0);
  for (uint64_t i = 1; i <= 100; ++i) {
    EXPECT_NEAR(zipf.Probability(i), 0.01, 1e-9);
  }
}

TEST(ZipfTest, ProbabilitiesDecreaseWithRank) {
  ZipfDistribution zipf(1000, 1.0);
  for (uint64_t i = 2; i <= 1000; i *= 2) {
    EXPECT_GT(zipf.Probability(i / 2 + (i == 2 ? 0 : 0)), zipf.Probability(i));
  }
}

TEST(ZipfTest, SkewOneHalvesProbabilityPerDoubling) {
  ZipfDistribution zipf(1024, 1.0);
  EXPECT_NEAR(zipf.Probability(1) / zipf.Probability(2), 2.0, 1e-9);
  EXPECT_NEAR(zipf.Probability(10) / zipf.Probability(20), 2.0, 1e-9);
}

TEST(ZipfTest, SamplingMatchesPmf) {
  ZipfDistribution zipf(50, 1.0);
  Xoshiro256 rng(3);
  std::vector<int> counts(51, 0);
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t rank = 1; rank <= 50; rank += 7) {
    const double expected = zipf.Probability(rank) * kSamples;
    EXPECT_NEAR(counts[rank], expected, expected * 0.15 + 30) << rank;
  }
}

TEST(ZipfTest, ExpectedFrequenciesSumExactly) {
  for (double skew : {0.0, 0.5, 1.0, 1.8}) {
    ZipfDistribution zipf(1000, skew);
    const auto freqs = zipf.ExpectedFrequencies(100000);
    ASSERT_EQ(freqs.size(), 1000u);
    EXPECT_EQ(std::accumulate(freqs.begin(), freqs.end(), 0ull), 100000ull);
    for (uint64_t f : freqs) EXPECT_GE(f, 1u);
    // Frequencies are non-increasing by rank.
    for (size_t i = 1; i < freqs.size(); ++i) {
      ASSERT_LE(freqs[i], freqs[i - 1] + 1) << i;  // +1 tolerates rounding
    }
  }
}

TEST(MultisetTest, StreamMatchesFrequencies) {
  const Multiset data = MakeZipfMultiset(200, 5000, 1.0, 7);
  EXPECT_EQ(data.total(), 5000u);
  EXPECT_EQ(data.num_distinct(), 200u);
  std::unordered_map<uint64_t, uint64_t> counts;
  for (uint64_t key : data.stream) ++counts[key];
  for (size_t i = 0; i < data.keys.size(); ++i) {
    ASSERT_EQ(counts[data.keys[i]], data.freqs[i]) << i;
  }
}

TEST(MultisetTest, StreamIsShuffled) {
  const Multiset data = MakeZipfMultiset(100, 3000, 0.0, 9);
  // The most frequent key's occurrences must not be contiguous.
  size_t longest_run = 1, run = 1;
  for (size_t i = 1; i < data.stream.size(); ++i) {
    run = (data.stream[i] == data.stream[i - 1]) ? run + 1 : 1;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_LT(longest_run, 10u);
}

TEST(MultisetTest, SeedsChangeOrderNotContent) {
  const Multiset a = MakeZipfMultiset(50, 1000, 0.5, 1);
  const Multiset b = MakeZipfMultiset(50, 1000, 0.5, 2);
  EXPECT_EQ(a.freqs, b.freqs);
  EXPECT_NE(a.stream, b.stream);
}

TEST(MultisetTest, UniformSplitsEvenly) {
  const Multiset data = MakeUniformMultiset(100, 1005, 3);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(data.freqs[i], 11u);
  for (size_t i = 5; i < 100; ++i) EXPECT_EQ(data.freqs[i], 10u);
}

TEST(MultisetTest, CustomKeys) {
  const Multiset data =
      MultisetFromFrequencies({100, 200, 300}, {5, 1, 2}, 11);
  EXPECT_EQ(data.total(), 8u);
  std::unordered_map<uint64_t, uint64_t> counts;
  for (uint64_t key : data.stream) ++counts[key];
  EXPECT_EQ(counts[100], 5u);
  EXPECT_EQ(counts[200], 1u);
  EXPECT_EQ(counts[300], 2u);
}

TEST(PalindromeTest, ShapeAndCounts) {
  const auto stream = MakePalindromeStream(5);
  const std::vector<uint64_t> expected{1, 2, 3, 4, 5, 5, 4, 3, 2, 1};
  EXPECT_EQ(stream, expected);
}

TEST(ForestCoverTest, MatchesPaperScale) {
  const Multiset data = MakeForestCoverElevation();
  EXPECT_EQ(data.total(), 581012u);
  EXPECT_EQ(data.num_distinct(), 1978u);
}

TEST(ForestCoverTest, UnimodalModerateSkewProfile) {
  const Multiset data = MakeForestCoverElevation();
  const uint64_t max_freq = *std::max_element(data.freqs.begin(),
                                              data.freqs.end());
  const uint64_t min_freq = *std::min_element(data.freqs.begin(),
                                              data.freqs.end());
  // Figure 7a: peak frequency in the 1500-2000 region, long low tails.
  EXPECT_GT(max_freq, 1000u);
  EXPECT_LT(max_freq, 2500u);
  EXPECT_GE(min_freq, 1u);
}

TEST(ForestCoverTest, DeterministicForSameSeed) {
  const Multiset a = MakeForestCoverElevation();
  const Multiset b = MakeForestCoverElevation();
  EXPECT_EQ(a.freqs, b.freqs);
  EXPECT_EQ(a.stream, b.stream);
}

TEST(ForestCoverTest, CustomScale) {
  ForestCoverOptions options;
  options.num_records = 10000;
  options.num_distinct = 100;
  const Multiset data = MakeForestCoverElevation(options);
  EXPECT_EQ(data.total(), 10000u);
  EXPECT_EQ(data.num_distinct(), 100u);
}

}  // namespace
}  // namespace sbf
