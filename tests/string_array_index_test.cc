#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "bitstream/bit_vector.h"
#include "bitstream/bit_writer.h"
#include "sai/string_array_index.h"
#include "util/bits.h"
#include "util/random.h"

namespace sbf {
namespace {

std::vector<size_t> PrefixOffsets(const std::vector<uint32_t>& lengths) {
  std::vector<size_t> offsets(lengths.size() + 1, 0);
  for (size_t i = 0; i < lengths.size(); ++i) {
    offsets[i + 1] = offsets[i] + lengths[i];
  }
  return offsets;
}

void ExpectAllOffsetsMatch(const StringArrayIndex& index,
                           const std::vector<uint32_t>& lengths) {
  const auto expected = PrefixOffsets(lengths);
  for (size_t i = 0; i <= lengths.size(); ++i) {
    ASSERT_EQ(index.Offset(i), expected[i]) << "string " << i;
  }
}

TEST(StringArrayIndexTest, SingleString) {
  std::vector<uint32_t> lengths{13};
  StringArrayIndex index(lengths);
  EXPECT_EQ(index.num_strings(), 1u);
  EXPECT_EQ(index.total_bits(), 13u);
  EXPECT_EQ(index.Offset(0), 0u);
  EXPECT_EQ(index.Offset(1), 13u);
}

TEST(StringArrayIndexTest, UniformLengths) {
  std::vector<uint32_t> lengths(1000, 7);
  StringArrayIndex index(lengths);
  ExpectAllOffsetsMatch(index, lengths);
}

TEST(StringArrayIndexTest, ZeroLengthStringsAllowed) {
  std::vector<uint32_t> lengths{0, 5, 0, 0, 9, 0};
  StringArrayIndex index(lengths);
  ExpectAllOffsetsMatch(index, lengths);
}

class SaiRandomTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SaiRandomTest, RandomLengthsMatchPrefixSums) {
  const uint32_t max_length = GetParam();
  Xoshiro256 rng(max_length * 13 + 1);
  std::vector<uint32_t> lengths(5000);
  for (auto& len : lengths) {
    len = static_cast<uint32_t>(rng.UniformInt(max_length + 1));
  }
  StringArrayIndex index(lengths);
  ExpectAllOffsetsMatch(index, lengths);
}

INSTANTIATE_TEST_SUITE_P(MaxLengths, SaiRandomTest,
                         ::testing::Values(1, 3, 8, 20, 64, 200));

TEST(StringArrayIndexTest, SkewedLengthsExerciseAllLevels) {
  // Mostly tiny strings (lookup-table chunks), occasional huge ones
  // (offset-vector chunks and complete-offset-vector groups).
  Xoshiro256 rng(42);
  std::vector<uint32_t> lengths(20000);
  for (size_t i = 0; i < lengths.size(); ++i) {
    const uint64_t r = rng.UniformInt(1000);
    if (r < 960) {
      lengths[i] = 1 + static_cast<uint32_t>(rng.UniformInt(4));
    } else if (r < 995) {
      lengths[i] = 32 + static_cast<uint32_t>(rng.UniformInt(100));
    } else {
      lengths[i] = 2000 + static_cast<uint32_t>(rng.UniformInt(3000));
    }
  }
  StringArrayIndex index(lengths);
  ExpectAllOffsetsMatch(index, lengths);

  const auto sizes = index.component_sizes();
  EXPECT_GT(sizes.c1_bits, 0u);
  EXPECT_GT(sizes.lookup_table_bits, 0u);
  EXPECT_GT(index.num_lookup_configs(), 0u);
}

TEST(StringArrayIndexTest, ForcedCompleteOffsetVectors) {
  // A tiny threshold pushes every group onto the complete-vector path.
  StringArrayIndex::Options options;
  options.l1_threshold_bits = 1;
  Xoshiro256 rng(5);
  std::vector<uint32_t> lengths(500);
  for (auto& len : lengths) len = 1 + rng.UniformInt(30);
  StringArrayIndex index(lengths, options);
  ExpectAllOffsetsMatch(index, lengths);
  EXPECT_GT(index.component_sizes().l2_offset_vector_bits, 0u);
}

TEST(StringArrayIndexTest, ForcedMiniOffsetVectors) {
  // Lookup threshold 1 forces every chunk onto the mini-offset-vector path.
  StringArrayIndex::Options options;
  options.lookup_threshold_bits = 1;
  Xoshiro256 rng(6);
  std::vector<uint32_t> lengths(800);
  for (auto& len : lengths) len = 1 + rng.UniformInt(10);
  StringArrayIndex index(lengths, options);
  ExpectAllOffsetsMatch(index, lengths);
  EXPECT_GT(index.component_sizes().l3_offset_vector_bits, 0u);
}

TEST(StringArrayIndexTest, CustomGroupAndChunkSizes) {
  StringArrayIndex::Options options;
  options.l1_group_items = 7;
  options.l2_chunk_items = 3;
  Xoshiro256 rng(8);
  std::vector<uint32_t> lengths(321);
  for (auto& len : lengths) len = rng.UniformInt(16);
  StringArrayIndex index(lengths, options);
  EXPECT_EQ(index.l1_group_items(), 7u);
  EXPECT_EQ(index.l2_chunk_items(), 3u);
  ExpectAllOffsetsMatch(index, lengths);
}

TEST(StringArrayIndexTest, ReadRecoversStoredValues) {
  // Encode values in BitWidth(v) bits and read them back via the index.
  Xoshiro256 rng(11);
  std::vector<uint64_t> values(3000);
  std::vector<uint32_t> lengths(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = rng.Next() >> (rng.UniformInt(56) + 8);
    lengths[i] = BitWidth(values[i]);
  }
  BitVector data;
  BitWriter writer(&data);
  for (size_t i = 0; i < values.size(); ++i) {
    writer.WriteBits(values[i], lengths[i]);
  }
  writer.Finish();

  StringArrayIndex index(lengths);
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(index.Read(data, i), values[i]) << i;
  }
}

TEST(StringArrayIndexTest, IndexOverheadSublinearForLargeArrays) {
  // o(N) + O(m): for strings averaging ~12 bits, the index should cost
  // well below the payload.
  Xoshiro256 rng(17);
  std::vector<uint32_t> lengths(200000);
  for (auto& len : lengths) len = 8 + rng.UniformInt(9);
  StringArrayIndex index(lengths);
  EXPECT_LT(index.IndexBits(), index.total_bits());
}

TEST(StringArrayIndexTest, LookupTableSharedAcrossChunks) {
  // Identical length patterns must share one config row.
  std::vector<uint32_t> lengths(4096, 3);  // all chunks identical
  StringArrayIndex index(lengths);
  // Full chunks, the partial tail chunk, and the all-empty padding chunks
  // of the last group share three configuration rows in total.
  EXPECT_LE(index.num_lookup_configs(), 3u);
}

TEST(StringArrayIndexTest, ComponentSizesSumToIndexBits) {
  Xoshiro256 rng(23);
  std::vector<uint32_t> lengths(10000);
  for (auto& len : lengths) len = 1 + rng.UniformInt(12);
  StringArrayIndex index(lengths);
  const auto sizes = index.component_sizes();
  EXPECT_EQ(sizes.TotalBits(), index.IndexBits());
  EXPECT_EQ(sizes.c1_bits + sizes.l2_offset_vector_bits +
                sizes.l3_offset_vector_bits + sizes.lookup_table_bits +
                sizes.flags_and_rank_bits,
            sizes.TotalBits());
}

}  // namespace
}  // namespace sbf
