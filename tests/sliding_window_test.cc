#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "core/recurring_minimum.h"
#include "core/sliding_window.h"
#include "core/spectral_bloom_filter.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

std::unique_ptr<FrequencyFilter> MakeSbf(SbfPolicy policy, uint64_t m,
                                         uint32_t k, uint64_t seed) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.policy = policy;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  return std::make_unique<SpectralBloomFilter>(options);
}

TEST(SlidingWindowTest, TracksOnlyWindowContents) {
  SlidingWindowFilter window(
      MakeSbf(SbfPolicy::kMinimumSelection, 100000, 5, 1), 10);
  for (uint64_t key = 1; key <= 30; ++key) window.Push(key);
  // Window holds keys 21..30.
  for (uint64_t key = 21; key <= 30; ++key) {
    EXPECT_EQ(window.Estimate(key), 1u) << key;
  }
  for (uint64_t key = 1; key <= 20; ++key) {
    EXPECT_EQ(window.Estimate(key), 0u) << key;
  }
  EXPECT_EQ(window.current_fill(), 10u);
}

TEST(SlidingWindowTest, RepeatedKeysCountedWithinWindow) {
  SlidingWindowFilter window(
      MakeSbf(SbfPolicy::kMinimumSelection, 100000, 5, 2), 6);
  for (int round = 0; round < 4; ++round) {
    window.Push(7);
    window.Push(8);
    window.Push(9);
  }
  // Window = last 6 pushes = two full rounds of {7, 8, 9}.
  EXPECT_EQ(window.Estimate(7), 2u);
  EXPECT_EQ(window.Estimate(8), 2u);
  EXPECT_EQ(window.Estimate(9), 2u);
}

TEST(SlidingWindowTest, MsWindowHasNoFalseNegativesOnStream) {
  // The Figure 9 scenario at small scale: window = M/5.
  const Multiset data = MakeZipfMultiset(150, 5000, 1.0, 5);
  const size_t window_size = data.stream.size() / 5;
  SlidingWindowFilter window(
      MakeSbf(SbfPolicy::kMinimumSelection, 2000, 5, 3), window_size);

  std::unordered_map<uint64_t, uint64_t> live;
  std::deque<uint64_t> reference;
  for (uint64_t key : data.stream) {
    window.Push(key);
    reference.push_back(key);
    ++live[key];
    while (reference.size() > window_size) {
      --live[reference.front()];
      reference.pop_front();
    }
  }
  for (const auto& [key, count] : live) {
    ASSERT_GE(window.Estimate(key), count) << key;
  }
}

TEST(SlidingWindowTest, MiWindowProducesFalseNegatives) {
  // The paper's point: Minimal Increase + deletions = false negatives.
  const Multiset data = MakeZipfMultiset(150, 8000, 0.8, 7);
  const size_t window_size = data.stream.size() / 5;
  SlidingWindowFilter window(
      MakeSbf(SbfPolicy::kMinimalIncrease, 800, 5, 5), window_size);

  std::unordered_map<uint64_t, uint64_t> live;
  std::deque<uint64_t> reference;
  for (uint64_t key : data.stream) {
    window.Push(key);
    reference.push_back(key);
    ++live[key];
    while (reference.size() > window_size) {
      --live[reference.front()];
      reference.pop_front();
    }
  }
  size_t false_negatives = 0;
  for (const auto& [key, count] : live) {
    if (window.Estimate(key) < count) ++false_negatives;
  }
  EXPECT_GT(false_negatives, 0u);
}

TEST(SlidingWindowTest, RmFilterWorksInWindow) {
  RecurringMinimumOptions options;
  options.primary_m = 2000;
  options.secondary_m = 1000;
  options.k = 5;
  options.seed = 9;
  options.backing = CounterBacking::kFixed64;
  SlidingWindowFilter window(std::make_unique<RecurringMinimumSbf>(options),
                             500);
  const Multiset data = MakeZipfMultiset(100, 3000, 0.5, 11);
  for (uint64_t key : data.stream) window.Push(key);
  EXPECT_EQ(window.current_fill(), 500u);
  EXPECT_EQ(window.Name(), "RM-window");
}

TEST(SlidingWindowTest, WindowOfOne) {
  SlidingWindowFilter window(
      MakeSbf(SbfPolicy::kMinimumSelection, 1000, 3, 13), 1);
  window.Push(5);
  window.Push(6);
  EXPECT_EQ(window.Estimate(5), 0u);
  EXPECT_EQ(window.Estimate(6), 1u);
}

}  // namespace
}  // namespace sbf
