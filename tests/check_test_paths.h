#ifndef SBF_TESTS_CHECK_TEST_PATHS_H_
#define SBF_TESTS_CHECK_TEST_PATHS_H_

#include <cstdint>

// Helpers for check_test.cc compiled in two sibling TUs with opposite
// NDEBUG settings, so one test binary can exercise both expansions of the
// debug-only macros regardless of the ambient build type:
//
//   check_test_debug_tu.cc   — compiled with NDEBUG undefined: SBF_DCHECK /
//                              SBF_DCHECK_MSG abort like their CHECK forms.
//   check_test_ndebug_tu.cc  — compiled with NDEBUG defined: both compile
//                              to no-ops that must not evaluate arguments.

namespace sbf::check_test {

// --- debug TU (macros armed): every call aborts -------------------------
void DebugDcheckFails();
void DebugDcheckMsgFails();

// --- NDEBUG TU (macros disarmed): every call returns normally ------------
void NdebugDcheckIsNoOp();
void NdebugDcheckMsgIsNoOp();
// Passes its argument to SBF_DCHECK / SBF_DCHECK_MSG; returns the number of
// times the disarmed macros evaluated it (must be 0).
uint64_t NdebugDcheckEvaluations();

}  // namespace sbf::check_test

#endif  // SBF_TESTS_CHECK_TEST_PATHS_H_
