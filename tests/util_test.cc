#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bits.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace sbf {
namespace {

// --- bits -----------------------------------------------------------------

TEST(BitsTest, BitWidthOfZeroIsOne) { EXPECT_EQ(BitWidth(0), 1u); }

TEST(BitsTest, BitWidthMatchesDefinition) {
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(2), 2u);
  EXPECT_EQ(BitWidth(3), 2u);
  EXPECT_EQ(BitWidth(4), 3u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
  EXPECT_EQ(BitWidth(~0ull), 64u);
}

TEST(BitsTest, BitWidthCoversValue) {
  for (uint64_t v : {0ull, 1ull, 7ull, 1000ull, 123456789ull, ~0ull >> 1}) {
    const uint32_t w = BitWidth(v);
    EXPECT_LE(v, LowMask(w)) << v;
    if (w > 1) {
      EXPECT_GT(v, LowMask(w - 1)) << v;
    }
  }
}

TEST(BitsTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(5), 3u);
  EXPECT_EQ(CeilLog2(1024), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(BitsTest, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(4), 2u);
  EXPECT_EQ(FloorLog2(1023), 9u);
  EXPECT_EQ(FloorLog2(1024), 10u);
}

TEST(BitsTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0ull);
  EXPECT_EQ(LowMask(1), 1ull);
  EXPECT_EQ(LowMask(8), 255ull);
  EXPECT_EQ(LowMask(64), ~0ull);
}

TEST(BitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 7), 0ull);
  EXPECT_EQ(CeilDiv(1, 7), 1ull);
  EXPECT_EQ(CeilDiv(7, 7), 1ull);
  EXPECT_EQ(CeilDiv(8, 7), 2ull);
}

// --- random ----------------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RandomTest, UniformIntWithinBound) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RandomTest, UniformIntRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.UniformInt(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RandomTest, UniformDoubleRange) {
  Xoshiro256 rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, ShufflePreservesElements) {
  Xoshiro256 rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RandomTest, ShuffleActuallyPermutes) {
  Xoshiro256 rng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += (v[i] != i);
  EXPECT_GT(moved, 50);
}

// --- metrics ---------------------------------------------------------------

TEST(ErrorStatsTest, NoErrors) {
  ErrorStats stats;
  stats.Record(5, 5);
  stats.Record(0, 0);
  EXPECT_EQ(stats.num_queries(), 2u);
  EXPECT_EQ(stats.num_errors(), 0u);
  EXPECT_DOUBLE_EQ(stats.ErrorRatio(), 0.0);
  EXPECT_DOUBLE_EQ(stats.AdditiveError(), 0.0);
}

TEST(ErrorStatsTest, AdditiveErrorIsRms) {
  ErrorStats stats;
  stats.Record(8, 5);   // +3
  stats.Record(5, 9);   // -4
  EXPECT_EQ(stats.num_errors(), 2u);
  EXPECT_EQ(stats.num_false_negatives(), 1u);
  EXPECT_DOUBLE_EQ(stats.AdditiveError(), std::sqrt((9.0 + 16.0) / 2.0));
  EXPECT_DOUBLE_EQ(stats.FalseNegativeShare(), 0.5);
  EXPECT_DOUBLE_EQ(stats.MeanSignedError(), -0.5);
}

TEST(ErrorStatsTest, MergeCombines) {
  ErrorStats a, b;
  a.Record(2, 1);
  b.Record(3, 3);
  b.Record(0, 4);
  a.Merge(b);
  EXPECT_EQ(a.num_queries(), 3u);
  EXPECT_EQ(a.num_errors(), 2u);
  EXPECT_EQ(a.num_false_negatives(), 1u);
}

TEST(AggregateTest, TracksMinMeanMax) {
  Aggregate agg;
  agg.Add(1.0);
  agg.Add(5.0);
  agg.Add(3.0);
  EXPECT_DOUBLE_EQ(agg.min(), 1.0);
  EXPECT_DOUBLE_EQ(agg.max(), 5.0);
  EXPECT_DOUBLE_EQ(agg.mean(), 3.0);
  EXPECT_EQ(agg.count(), 3u);
}

// --- status ----------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsStatus) {
  StatusOr<int> result(Status::OutOfRange("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kOutOfRange);
}

// --- table printer ----------------------------------------------------------

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| a   | long_header |"), std::string::npos);
  EXPECT_NE(out.find("| 333 | 4           |"), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::FmtInt(12345), "12345");
  EXPECT_EQ(TablePrinter::FmtSci(0.000123, 2), "1.23e-04");
}

}  // namespace
}  // namespace sbf
