// Long-run stress and amortization properties of the dynamic compact
// counter storage (Section 4.4): correctness under millions of mixed
// operations across group-size/slack configurations, and sanity bounds on
// the amortized work counters (pushed bits, rebuilds).

#include <gtest/gtest.h>

#include <vector>

#include "sai/compact_counter_vector.h"
#include "util/random.h"
#include "workload/multiset_stream.h"
#include "workload/zipf.h"

namespace sbf {
namespace {

struct StressConfig {
  size_t group_size;
  double slack;
  const char* name;
};

class CompactStressTest : public ::testing::TestWithParam<StressConfig> {};

TEST_P(CompactStressTest, MillionOpsMatchModel) {
  const StressConfig config = GetParam();
  constexpr size_t kM = 2000;
  CompactCounterVector::Options options;
  options.group_size = config.group_size;
  options.slack_per_counter = config.slack;
  CompactCounterVector counters(kM, options);
  std::vector<uint64_t> model(kM, 0);

  Xoshiro256 rng(0x57E55ull + config.group_size);
  for (int op = 0; op < 1000000; ++op) {
    const size_t i = rng.UniformInt(kM);
    switch (rng.UniformInt(4)) {
      case 0:
      case 1:
        counters.Increment(i, 1);
        model[i] += 1;
        break;
      case 2:
        if (model[i] > 0) {
          counters.Decrement(i, 1);
          model[i] -= 1;
        } else {
          counters.Increment(i, 1);
          model[i] += 1;
        }
        break;
      default: {
        const uint64_t value = rng.Next() >> (40 + rng.UniformInt(20));
        counters.Set(i, value);
        model[i] = value;
        break;
      }
    }
  }
  for (size_t i = 0; i < kM; ++i) {
    ASSERT_EQ(counters.Get(i), model[i]) << i;
  }
}

TEST_P(CompactStressTest, AmortizedPushWorkBounded) {
  // Lemma 8's practical consequence: total pushed bits stay within a
  // constant factor of the operation count (here: a generous 128 bits of
  // shifted work per insert on average, far above the expected O(1/eps)).
  const StressConfig config = GetParam();
  constexpr size_t kM = 5000;
  constexpr size_t kOps = 200000;
  CompactCounterVector::Options options;
  options.group_size = config.group_size;
  options.slack_per_counter = config.slack;
  CompactCounterVector counters(kM, options);

  Xoshiro256 rng(0xA303ull);
  for (size_t op = 0; op < kOps; ++op) {
    counters.Increment(rng.UniformInt(kM), 1);
  }
  EXPECT_LT(counters.pushed_bits_total(), 128ull * kOps) << config.name;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, CompactStressTest,
    ::testing::Values(StressConfig{8, 0.1, "tiny_groups_tight_slack"},
                      StressConfig{32, 0.5, "default"},
                      StressConfig{64, 1.0, "large_groups_loose_slack"},
                      StressConfig{16, 0.0, "zero_configured_slack"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(CompactStressTest, ZipfStreamThroughSbfShapedAccess) {
  // The actual SBF access pattern: k pseudo-random counters per key, keys
  // Zipf-distributed — the skew concentrates growth on a few counters.
  constexpr size_t kM = 3000;
  CompactCounterVector counters(kM);
  std::vector<uint64_t> model(kM, 0);
  const Multiset data = MakeZipfMultiset(800, 150000, 1.2, 3);
  Xoshiro256 rng(7);
  for (uint64_t key : data.stream) {
    for (int probe = 0; probe < 5; ++probe) {
      const size_t i =
          static_cast<size_t>((key * 0x9E3779B97F4A7C15ull + probe * kM) %
                              kM);
      counters.Increment(i, 1);
      model[i] += 1;
    }
  }
  for (size_t i = 0; i < kM; ++i) ASSERT_EQ(counters.Get(i), model[i]);
}

TEST(CompactStressTest, RepeatedRebuildsStayConsistent) {
  CompactCounterVector counters(200);
  Xoshiro256 rng(11);
  std::vector<uint64_t> model(200, 0);
  for (int round = 0; round < 50; ++round) {
    for (int op = 0; op < 200; ++op) {
      const size_t i = rng.UniformInt(200);
      const uint64_t value = rng.Next() >> (8 + rng.UniformInt(50));
      counters.Set(i, value);
      model[i] = value;
    }
    counters.ForceRebuild();
    for (size_t i = 0; i < 200; ++i) {
      ASSERT_EQ(counters.Get(i), model[i]) << "round " << round;
    }
  }
  EXPECT_GE(counters.rebuild_count(), 50u);
}

TEST(CompactStressTest, MonotoneGrowthThenFullDrain) {
  CompactCounterVector counters(1000);
  for (uint64_t round = 1; round <= 20; ++round) {
    for (size_t i = 0; i < 1000; ++i) counters.Increment(i, round);
  }
  const uint64_t expected = (20 * 21) / 2;
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(counters.Get(i), expected);
  }
  for (uint64_t round = 1; round <= 20; ++round) {
    for (size_t i = 0; i < 1000; ++i) counters.Decrement(i, round);
  }
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(counters.Get(i), 0u);
  }
}

}  // namespace
}  // namespace sbf
