#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "sai/compact_counter_vector.h"
#include "sai/counter_vector.h"
#include "sai/fixed_counter_vector.h"
#include "sai/serial_scan_counter_vector.h"
#include "util/random.h"

namespace sbf {
namespace {

// --- shared behaviour across all backings (property suite) ------------------

class CounterBackingTest : public ::testing::TestWithParam<CounterBacking> {
 protected:
  std::unique_ptr<CounterVector> Make(size_t m) {
    return MakeCounterVector(GetParam(), m);
  }
};

TEST_P(CounterBackingTest, StartsAtZero) {
  auto v = Make(100);
  EXPECT_EQ(v->size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(v->Get(i), 0u);
  EXPECT_EQ(v->Total(), 0u);
}

TEST_P(CounterBackingTest, SetGetRoundTrip) {
  auto v = Make(50);
  v->Set(0, 7);
  v->Set(25, 123456);
  v->Set(49, 1);
  EXPECT_EQ(v->Get(0), 7u);
  EXPECT_EQ(v->Get(25), 123456u);
  EXPECT_EQ(v->Get(49), 1u);
  EXPECT_EQ(v->Get(1), 0u);
}

TEST_P(CounterBackingTest, IncrementAndDecrement) {
  auto v = Make(10);
  v->Increment(3, 5);
  v->Increment(3, 2);
  EXPECT_EQ(v->Get(3), 7u);
  v->Decrement(3, 4);
  EXPECT_EQ(v->Get(3), 3u);
  v->Decrement(3, 3);
  EXPECT_EQ(v->Get(3), 0u);
}

TEST_P(CounterBackingTest, RandomOpsMatchReferenceModel) {
  constexpr size_t kM = 200;
  auto v = Make(kM);
  std::vector<uint64_t> model(kM, 0);
  Xoshiro256 rng(static_cast<uint64_t>(GetParam()) * 31 + 5);

  for (int iter = 0; iter < 20000; ++iter) {
    const size_t i = rng.UniformInt(kM);
    switch (rng.UniformInt(3)) {
      case 0: {
        const uint64_t d = rng.UniformInt(20) + 1;
        v->Increment(i, d);
        model[i] += d;
        break;
      }
      case 1:
        if (model[i] > 0) {
          const uint64_t d = rng.UniformInt(model[i]) + 1;
          v->Decrement(i, d);
          model[i] -= d;
        }
        break;
      default: {
        // Keep values within 31 bits so the fixed32 backing can hold them.
        const uint64_t value = rng.Next() >> (rng.UniformInt(30) + 33);
        v->Set(i, value);
        model[i] = value;
        break;
      }
    }
    if (iter % 500 == 0) {
      for (size_t j = 0; j < kM; ++j) {
        ASSERT_EQ(v->Get(j), model[j]) << "counter " << j << " iter " << iter;
      }
    }
  }
  for (size_t j = 0; j < kM; ++j) ASSERT_EQ(v->Get(j), model[j]);
}

TEST_P(CounterBackingTest, SkewedGrowthMatchesModel) {
  // A few counters grow huge while most stay tiny — the Zipfian pattern
  // that stresses width expansion and slack borrowing.
  constexpr size_t kM = 300;
  auto v = Make(kM);
  std::vector<uint64_t> model(kM, 0);
  Xoshiro256 rng(77);
  for (int iter = 0; iter < 30000; ++iter) {
    // Zipf-flavoured index: low indices picked much more often.
    const size_t i = static_cast<size_t>(
        kM * rng.UniformDouble() * rng.UniformDouble() * rng.UniformDouble());
    v->Increment(i, 1);
    model[i] += 1;
  }
  for (size_t j = 0; j < kM; ++j) ASSERT_EQ(v->Get(j), model[j]);
}

TEST_P(CounterBackingTest, LargeValues) {
  auto v = Make(8);
  // Largest value every backing can represent (fixed32 caps at 2^32 - 1).
  const uint64_t big = GetParam() == CounterBacking::kFixed32
                           ? (1ull << 31)
                           : (1ull << 50);
  v->Set(0, big);
  v->Set(7, big + 12345);
  EXPECT_EQ(v->Get(0), big);
  EXPECT_EQ(v->Get(7), big + 12345);
  EXPECT_EQ(v->Get(3), 0u);
}

TEST_P(CounterBackingTest, ResetZeroes) {
  auto v = Make(64);
  for (size_t i = 0; i < 64; ++i) v->Set(i, i * i);
  v->Reset();
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(v->Get(i), 0u);
}

TEST_P(CounterBackingTest, CloneIsDeepAndEqual) {
  auto v = Make(40);
  Xoshiro256 rng(21);
  for (size_t i = 0; i < 40; ++i) v->Set(i, rng.UniformInt(1000));
  auto copy = v->Clone();
  for (size_t i = 0; i < 40; ++i) EXPECT_EQ(copy->Get(i), v->Get(i));
  copy->Set(5, 999999);
  EXPECT_NE(copy->Get(5), v->Get(5));
}

TEST_P(CounterBackingTest, TotalSumsCounters) {
  auto v = Make(10);
  uint64_t expected = 0;
  for (size_t i = 0; i < 10; ++i) {
    v->Set(i, i * 3);
    expected += i * 3;
  }
  EXPECT_EQ(v->Total(), expected);
}

TEST_P(CounterBackingTest, MemoryUsageIsPositiveAndScales) {
  auto small = Make(64);
  auto large = Make(6400);
  EXPECT_GT(small->MemoryUsageBits(), 0u);
  EXPECT_GT(large->MemoryUsageBits(), small->MemoryUsageBits());
}

INSTANTIATE_TEST_SUITE_P(
    Backings, CounterBackingTest,
    ::testing::Values(CounterBacking::kFixed64, CounterBacking::kFixed32,
                      CounterBacking::kCompact, CounterBacking::kSerialScan),
    [](const auto& param_info) {
      std::string name = CounterBackingName(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- fixed-width specifics ----------------------------------------------------

TEST(FixedWidthTest, WidthBoundsValues) {
  FixedWidthCounterVector v(10, 4);
  EXPECT_EQ(v.max_value(), 15u);
  v.Set(0, 15);
  EXPECT_EQ(v.Get(0), 15u);
}

TEST(FixedWidthTest, SaturatingIncrementClamps) {
  FixedWidthCounterVector v(4, 4, /*sticky_saturation=*/true);
  v.Increment(0, 20);
  EXPECT_EQ(v.Get(0), 15u);
  EXPECT_EQ(v.SaturatedCount(), 1u);
}

TEST(FixedWidthTest, StickyCounterNeverDecrements) {
  FixedWidthCounterVector v(4, 4, /*sticky_saturation=*/true);
  v.Increment(0, 15);
  v.Decrement(0, 3);
  EXPECT_EQ(v.Get(0), 15u);  // stuck
  v.Increment(1, 10);
  v.Decrement(1, 3);
  EXPECT_EQ(v.Get(1), 7u);  // normal path still works
}

TEST(FixedWidthTest, NameReflectsConfig) {
  EXPECT_EQ(FixedWidthCounterVector(4, 4, true).Name(), "fixed4-saturating");
  EXPECT_EQ(FixedWidthCounterVector(4, 32).Name(), "fixed32");
}

// --- compact specifics ---------------------------------------------------------

TEST(CompactTest, WidthsStartAtOneAndGrow) {
  CompactCounterVector v(100);
  EXPECT_EQ(v.WidthOf(0), 1u);
  v.Set(0, 1);
  EXPECT_EQ(v.WidthOf(0), 1u);
  v.Set(0, 2);
  EXPECT_EQ(v.WidthOf(0), 2u);
  v.Set(0, 255);
  EXPECT_EQ(v.WidthOf(0), 8u);
}

TEST(CompactTest, DecrementKeepsWidthUntilRebuild) {
  CompactCounterVector v(100);
  v.Set(0, 255);
  v.Set(0, 1);  // value shrinks, width stays (positions don't move)
  EXPECT_EQ(v.WidthOf(0), 8u);
  EXPECT_EQ(v.Get(0), 1u);
  v.ForceRebuild();
  EXPECT_EQ(v.WidthOf(0), 1u);
  EXPECT_EQ(v.Get(0), 1u);
}

TEST(CompactTest, UsedBitsTracksWidths) {
  CompactCounterVector v(10);
  EXPECT_EQ(v.UsedBits(), 10u);  // all width-1
  v.Set(0, 7);                   // width 3
  EXPECT_EQ(v.UsedBits(), 12u);
}

TEST(CompactTest, SlackBorrowingAcrossGroups) {
  // Tight slack forces cross-group pushes.
  CompactCounterVector::Options options;
  options.group_size = 8;
  options.slack_per_counter = 0.25;
  CompactCounterVector v(64, options);
  std::vector<uint64_t> model(64, 0);
  Xoshiro256 rng(3);
  for (int iter = 0; iter < 5000; ++iter) {
    const size_t i = rng.UniformInt(64);
    const uint64_t value = rng.Next() >> (rng.UniformInt(32) + 32);
    v.Set(i, value);
    model[i] = value;
  }
  for (size_t i = 0; i < 64; ++i) ASSERT_EQ(v.Get(i), model[i]);
  EXPECT_GT(v.pushed_bits_total(), 0u);
}

TEST(CompactTest, RebuildsWhenSlackExhausted) {
  CompactCounterVector::Options options;
  options.group_size = 8;
  options.slack_per_counter = 0.1;
  CompactCounterVector v(32, options);
  // Grow every counter to 32 bits: guaranteed to exceed the initial slack.
  for (size_t i = 0; i < 32; ++i) v.Set(i, 0xFFFFFFFFull);
  for (size_t i = 0; i < 32; ++i) ASSERT_EQ(v.Get(i), 0xFFFFFFFFull);
  EXPECT_GE(v.rebuild_count(), 1u);
}

TEST(CompactTest, CompactnessNearInformationContent) {
  // For m counters of value ~15 (4 bits each) the base array should be
  // within a small factor of the N = 4m payload, not 64m.
  constexpr size_t kM = 10000;
  CompactCounterVector v(kM);
  for (size_t i = 0; i < kM; ++i) v.Set(i, 15);
  v.ForceRebuild();
  EXPECT_LT(v.BaseArrayBits(), 7 * kM);   // payload 4m + slack
  EXPECT_GE(v.BaseArrayBits(), 4 * kM);
}

TEST(CompactTest, SingleCounterVector) {
  CompactCounterVector v(1);
  v.Set(0, 42);
  EXPECT_EQ(v.Get(0), 42u);
}

TEST(CompactTest, GroupSizeOne) {
  CompactCounterVector::Options options;
  options.group_size = 1;
  CompactCounterVector v(17, options);
  for (size_t i = 0; i < 17; ++i) v.Set(i, i * 1000);
  for (size_t i = 0; i < 17; ++i) EXPECT_EQ(v.Get(i), i * 1000);
}

// --- serial-scan specifics ------------------------------------------------------

TEST(SerialScanTest, EncodedBitsReflectValues) {
  SerialScanCounterVector v(100);
  const size_t empty_bits = v.EncodedBits();
  // Counters of zero cost 1 bit each with the {0,0} steps code.
  EXPECT_EQ(empty_bits, 100u);
  v.Set(0, 1);  // code(2) = '10' -> 2 bits
  EXPECT_EQ(v.EncodedBits(), 101u);
}

TEST(SerialScanTest, RebuildOnOverflow) {
  SerialScanCounterVector::Options options;
  options.group_size = 4;
  options.slack_per_counter = 0.1;
  SerialScanCounterVector v(16, options);
  for (size_t i = 0; i < 16; ++i) v.Set(i, 1ull << 40);
  for (size_t i = 0; i < 16; ++i) ASSERT_EQ(v.Get(i), 1ull << 40);
}

TEST(SerialScanTest, AlternativeStepConfig) {
  SerialScanCounterVector::Options options;
  options.step_widths = {2, 3};
  SerialScanCounterVector v(50, options);
  for (size_t i = 0; i < 50; ++i) v.Set(i, i);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(v.Get(i), i);
}

// --- cross-backing equivalence ---------------------------------------------------

// --- saturation governance --------------------------------------------------

TEST_P(CounterBackingTest, DecrementBelowZeroClampsAndTallies) {
  // Regression: over-deleting used to abort; it must clamp at zero, tally
  // the event, and leave the vector fully usable.
  auto v = Make(16);
  v->Decrement(3, 5);
  EXPECT_EQ(v->Get(3), 0u);
  v->Increment(3, 2);
  v->Decrement(3, 10);
  EXPECT_EQ(v->Get(3), 0u);
  EXPECT_EQ(v->saturation().underflow_clamps, 2u);
  EXPECT_EQ(v->saturation().saturation_clamps, 0u);
  v->Increment(3, 7);
  EXPECT_EQ(v->Get(3), 7u);
}

TEST_P(CounterBackingTest, IncrementPastMaxClampsAndTallies) {
  auto v = Make(8);
  const uint64_t max = v->MaxValue();
  v->Set(0, max);
  EXPECT_EQ(v->Get(0), max);
  v->Increment(0, 1);  // would wrap past the backing's range
  EXPECT_EQ(v->Get(0), max);
  EXPECT_GE(v->saturation().saturation_clamps, 1u);
  // A clamped counter still reads max — never less (one-sided).
  v->Increment(0, 12345);
  EXPECT_EQ(v->Get(0), max);
}

TEST_P(CounterBackingTest, ScanOccupancyCountsNonzeroAndSaturated) {
  auto v = Make(600);  // spans multiple GetMany chunks
  v->Increment(1, 3);
  v->Increment(599, 1);
  v->Set(300, v->MaxValue());
  const OccupancyCounts counts = v->ScanOccupancy();
  EXPECT_EQ(counts.nonzero, 3u);
  EXPECT_EQ(counts.saturated, 1u);
}

TEST(FixedWidthTest, SetPastMaxClampsInsteadOfAborting) {
  // Regression: Set used to SBF_CHECK on out-of-range values, an abort
  // reachable from public inputs (narrow widths under Minimal Increase
  // lifts). It now clamps and tallies.
  FixedWidthCounterVector v(8, 4);
  v.Set(2, 100);
  EXPECT_EQ(v.Get(2), 15u);
  EXPECT_EQ(v.saturation().saturation_clamps, 1u);
}

TEST(FixedWidthTest, CloneCarriesSaturationStats) {
  FixedWidthCounterVector v(8, 4);
  v.Increment(0, 100);
  v.Decrement(1, 1);
  auto clone = v.Clone();
  EXPECT_EQ(clone->saturation().saturation_clamps, 1u);
  EXPECT_EQ(clone->saturation().underflow_clamps, 1u);
}

TEST(CrossBackingTest, AllBackingsAgreeUnderIdenticalOps) {
  constexpr size_t kM = 128;
  std::vector<std::unique_ptr<CounterVector>> vectors;
  vectors.push_back(MakeCounterVector(CounterBacking::kFixed64, kM));
  vectors.push_back(MakeCounterVector(CounterBacking::kFixed32, kM));
  vectors.push_back(MakeCounterVector(CounterBacking::kCompact, kM));
  vectors.push_back(MakeCounterVector(CounterBacking::kSerialScan, kM));

  Xoshiro256 rng(123);
  for (int iter = 0; iter < 5000; ++iter) {
    const size_t i = rng.UniformInt(kM);
    const uint64_t d = rng.UniformInt(5) + 1;
    for (auto& v : vectors) v->Increment(i, d);
  }
  for (size_t i = 0; i < kM; ++i) {
    const uint64_t expected = vectors[0]->Get(i);
    for (auto& v : vectors) {
      ASSERT_EQ(v->Get(i), expected) << v->Name() << " at " << i;
    }
  }
}

}  // namespace
}  // namespace sbf
