#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"

namespace sbf {
namespace {

TEST(BloomErrorTest, PaperOptimalCase) {
  // gamma = ln 2, k = m/n * ln2: error = 0.5^k. For k = 5 at gamma ~ 0.7,
  // the paper quotes E_b ~ 0.032 (Table 1's gamma = 0.7 row).
  EXPECT_NEAR(BloomErrorRate(0.7, 5), 0.032, 0.003);
}

TEST(BloomErrorTest, Table1Gammas) {
  // Table 1 column E_b: gamma 1 -> 0.101, 0.83 -> 0.057, 0.5 -> 0.009.
  EXPECT_NEAR(BloomErrorRate(1.0, 5), 0.101, 0.005);
  EXPECT_NEAR(BloomErrorRate(0.83, 5), 0.057, 0.004);
  EXPECT_NEAR(BloomErrorRate(0.5, 5), 0.009, 0.002);
}

TEST(BloomErrorTest, ExactApproachesAsymptotic) {
  const double exact = BloomErrorRateExact(1000, 8000, 5);
  const double asymptotic = BloomErrorRateFor(1000, 8000, 5);
  EXPECT_NEAR(exact, asymptotic, asymptotic * 0.05);
}

TEST(BloomErrorTest, MonotoneInLoad) {
  EXPECT_LT(BloomErrorRate(0.2, 5), BloomErrorRate(0.5, 5));
  EXPECT_LT(BloomErrorRate(0.5, 5), BloomErrorRate(1.0, 5));
}

TEST(DoubleStepTest, SmallAtPaperParameters) {
  // Section 2.3: E' * (1 - e^-gamma)^{k-1} < 1% at gamma 0.7, k = 5.
  const uint64_t m = 10000;
  const uint64_t n = 1400;  // gamma = 0.7
  const double e_prime = DoubleStepProbability(n, m, 5);
  const double prob = e_prime * std::pow(1 - std::exp(-0.7), 4);
  EXPECT_LT(prob, 0.0105);
}

TEST(ZipfRelativeErrorTest, RisesWithRank) {
  // Figure 1: the expected relative error rises monotonically as items get
  // less frequent.
  const double front = ZipfExpectedRelativeError(10, 10000, 5, 1.0);
  const double middle = ZipfExpectedRelativeError(5000, 10000, 5, 1.0);
  const double back = ZipfExpectedRelativeError(9999, 10000, 5, 1.0);
  EXPECT_LT(front, middle);
  EXPECT_LT(middle, back);
}

TEST(ZipfRelativeErrorTest, SkewCrossoverExists) {
  // Figure 1: high skews have smaller error for frequent items but larger
  // for rare items.
  const double high_skew_front = ZipfExpectedRelativeError(10, 10000, 5, 1.8);
  const double low_skew_front = ZipfExpectedRelativeError(10, 10000, 5, 0.2);
  EXPECT_LT(high_skew_front, low_skew_front);

  const double high_skew_back = ZipfExpectedRelativeError(9999, 10000, 5, 1.8);
  const double low_skew_back = ZipfExpectedRelativeError(9999, 10000, 5, 0.2);
  EXPECT_GT(high_skew_back, low_skew_back);
}

TEST(ZipfMeanRelativeErrorTest, MinimizedNearOptimalSkew) {
  // Equation (2) ~ 1/((k-z)(z+1)) is minimized at z = (k-1)/2 = 2 for
  // k = 5 (the paper prints (k+1)/2; see ZipfOptimalSkew).
  EXPECT_DOUBLE_EQ(ZipfOptimalSkew(5), 2.0);
  const double at_min = ZipfMeanRelativeErrorBound(10000, 5, 2.0);
  EXPECT_LT(at_min, ZipfMeanRelativeErrorBound(10000, 5, 1.0));
  EXPECT_LT(at_min, ZipfMeanRelativeErrorBound(10000, 5, 3.5));
}

TEST(ZipfTailBoundTest, PaperWorkedExample) {
  // Section 2.3: n = 1000, k = 5, z = 1, T = 0.5 ->
  // P(RE_i > 0.5) <= 5 (i / 497.5)^5, exceeding 1 for i > 360.
  const double at_100 = ZipfRelativeErrorTailBound(100, 1000, 5, 1.0, 0.5);
  EXPECT_NEAR(at_100, 5.0 * std::pow(100.0 / 497.5, 5.0), 1e-9);
  EXPECT_LT(at_100, 1.0);
  EXPECT_GT(ZipfRelativeErrorTailBound(400, 1000, 5, 1.0, 0.5), 1.0);
  EXPECT_LT(ZipfRelativeErrorTailBound(350, 1000, 5, 1.0, 0.5), 1.1);
}

TEST(IcebergErrorTest, ZeroThresholdZeroError) {
  const auto pmf = ZipfFrequencyPmf(1000, 100000, 1.0);
  EXPECT_DOUBLE_EQ(IcebergErrorRate(pmf, 1.0, 5, 0), 0.0);
}

TEST(IcebergErrorTest, BelowPlainBloomError) {
  // Figure 4's observation: iceberg error never exceeds the Bloom error for
  // the same parameters (it is a subset of Bloom error events).
  const auto pmf = ZipfFrequencyPmf(1000, 100000, 0.8);
  const double bloom = BloomErrorRate(1.0, 5);
  for (uint64_t threshold : {2ull, 10ull, 50ull, 200ull}) {
    EXPECT_LE(IcebergErrorRate(pmf, 1.0, 5, threshold), bloom) << threshold;
  }
}

TEST(IcebergErrorTest, RiseThenFallAcrossThresholds) {
  // Figure 4's shape for skewed data: error rises for small T, reaches a
  // maximum, then falls as T grows.
  const auto pmf = ZipfFrequencyPmf(1000, 100000, 1.0);
  const double t_small = IcebergErrorRate(pmf, 1.0, 5, 2);
  double max_error = 0.0;
  for (uint64_t t = 2; t < 500; ++t) {
    max_error = std::max(max_error, IcebergErrorRate(pmf, 1.0, 5, t));
  }
  const double t_large = IcebergErrorRate(pmf, 1.0, 5, 2000);
  EXPECT_GT(max_error, t_small);
  EXPECT_GT(max_error, t_large);
}

TEST(ZipfPmfTest, SumsToOne) {
  const auto pmf = ZipfFrequencyPmf(500, 20000, 1.0);
  double sum = 0.0;
  for (double p : pmf) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfPmfTest, UniformDataConcentrates) {
  const auto pmf = ZipfFrequencyPmf(100, 10000, 0.0);
  // Every item has frequency ~100.
  EXPECT_NEAR(pmf[100], 1.0, 1e-9);
}

}  // namespace
}  // namespace sbf
