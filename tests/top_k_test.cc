#include <gtest/gtest.h>

#include <set>

#include "db/top_k.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

SbfOptions MakeOptions(uint64_t m, uint32_t k, uint64_t seed) {
  SbfOptions options;
  options.m = m;
  options.k = k;
  options.seed = seed;
  options.backing = CounterBacking::kFixed64;
  return options;
}

TEST(TopKTest, TracksExactTopOnLightLoad) {
  TopKTracker tracker(3, MakeOptions(50000, 5, 1));
  for (uint64_t key = 1; key <= 20; ++key) {
    tracker.Observe(key, key);  // key k appears k times
  }
  const auto top = tracker.Top();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 20u);
  EXPECT_EQ(top[0].estimate, 20u);
  EXPECT_EQ(top[1].key, 19u);
  EXPECT_EQ(top[2].key, 18u);
}

TEST(TopKTest, HeavyStreamRecall) {
  // Zipfian stream: the true top-10 keys are ranks 1..10; the tracker
  // must recover at least 9 of them (an overestimated medium key can in
  // principle displace the tail of the list).
  const Multiset data = MakeZipfMultiset(2000, 100000, 1.0, 5);
  TopKTracker tracker(10, MakeOptions(15000, 5, 3));
  for (uint64_t key : data.stream) tracker.Observe(key);

  std::set<uint64_t> true_top;
  for (uint64_t rank = 1; rank <= 10; ++rank) true_top.insert(rank);
  size_t hits = 0;
  for (const auto& entry : tracker.Top()) hits += true_top.contains(entry.key);
  EXPECT_GE(hits, 9u);
}

TEST(TopKTest, EstimatesUpperBoundTruth) {
  const Multiset data = MakeZipfMultiset(500, 20000, 0.8, 7);
  TopKTracker tracker(20, MakeOptions(4000, 5, 9));
  for (uint64_t key : data.stream) tracker.Observe(key);
  for (const auto& entry : tracker.Top()) {
    // Every candidate's estimate is at least its true frequency.
    const auto it =
        std::find(data.keys.begin(), data.keys.end(), entry.key);
    ASSERT_NE(it, data.keys.end());
    EXPECT_GE(entry.estimate, data.freqs[it - data.keys.begin()]);
  }
}

TEST(TopKTest, CapacityOneTracksTheMaximum) {
  TopKTracker tracker(1, MakeOptions(10000, 5, 11));
  tracker.Observe(7, 100);
  tracker.Observe(8, 50);
  tracker.Observe(9, 200);
  const auto top = tracker.Top();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, 9u);
}

TEST(TopKTest, RepeatedObservationsUpdateInPlace) {
  TopKTracker tracker(2, MakeOptions(10000, 5, 13));
  for (int i = 0; i < 10; ++i) tracker.Observe(5);
  const auto top = tracker.Top();
  ASSERT_EQ(top.size(), 1u);  // one distinct key, not ten entries
  EXPECT_EQ(top[0].estimate, 10u);
}

TEST(TopKTest, MemoryBoundedByCapacity) {
  TopKTracker tracker(5, MakeOptions(1000, 5, 15));
  for (uint64_t key = 0; key < 10000; ++key) tracker.Observe(key);
  EXPECT_LE(tracker.Top().size(), 5u);
  EXPECT_LE(tracker.MemoryUsageBits(),
            SpectralBloomFilter(MakeOptions(1000, 5, 15)).MemoryUsageBits() +
                5 * 128);
}

}  // namespace
}  // namespace sbf
