#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "hashing/hash.h"
#include "hashing/hash_family.h"

namespace sbf {
namespace {

TEST(Mix64Test, Deterministic) { EXPECT_EQ(Mix64(123), Mix64(123)); }

TEST(Mix64Test, InjectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64Test, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip ~32 output bits.
  for (uint64_t bit = 0; bit < 64; bit += 7) {
    const uint64_t diff = Mix64(0x12345678) ^ Mix64(0x12345678 ^ (1ull << bit));
    const int flipped = __builtin_popcountll(diff);
    EXPECT_GT(flipped, 10) << "bit " << bit;
    EXPECT_LT(flipped, 54) << "bit " << bit;
  }
}

TEST(Fingerprint64Test, DeterministicAndSeedSensitive) {
  EXPECT_EQ(Fingerprint64("hello"), Fingerprint64("hello"));
  EXPECT_NE(Fingerprint64("hello"), Fingerprint64("hello", 1));
  EXPECT_NE(Fingerprint64("hello"), Fingerprint64("hellp"));
}

TEST(Fingerprint64Test, HandlesAllLengthClasses) {
  // Exercises the <4, <8, <32 and >=32 byte paths.
  std::set<uint64_t> outputs;
  std::string s;
  for (int len = 0; len <= 100; ++len) {
    outputs.insert(Fingerprint64(s));
    s.push_back(static_cast<char>('a' + len % 26));
  }
  EXPECT_EQ(outputs.size(), 101u);
}

TEST(ModuloMultiplyHashTest, StaysInRange) {
  ModuloMultiplyHash h(0x9E3779B97F4A7C15ull, 1000);
  for (uint64_t v = 0; v < 100000; v += 17) {
    EXPECT_LT(h(v), 1000u);
  }
}

TEST(ModuloMultiplyHashTest, SpreadsValues) {
  ModuloMultiplyHash h(0x9E3779B97F4A7C15ull, 97);
  std::vector<int> counts(97, 0);
  for (uint64_t v = 1; v <= 97000; ++v) ++counts[h(Mix64(v))];
  for (int c : counts) EXPECT_NEAR(c, 1000, 250);
}

class HashFamilyKindTest : public ::testing::TestWithParam<HashFamily::Kind> {};

TEST_P(HashFamilyKindTest, PositionsWithinRange) {
  HashFamily family(5, 1237, 42, GetParam());
  uint64_t positions[HashFamily::kMaxK];
  for (uint64_t key = 0; key < 2000; ++key) {
    family.Positions(key, positions);
    for (uint32_t i = 0; i < 5; ++i) EXPECT_LT(positions[i], 1237u);
  }
}

TEST_P(HashFamilyKindTest, PositionsMatchPositionAccessor) {
  HashFamily family(7, 509, 9, GetParam());
  uint64_t positions[HashFamily::kMaxK];
  for (uint64_t key = 0; key < 200; ++key) {
    family.Positions(key, positions);
    for (uint32_t i = 0; i < 7; ++i) {
      EXPECT_EQ(positions[i], family.Position(key, i));
    }
  }
}

TEST_P(HashFamilyKindTest, DeterministicAcrossInstances) {
  HashFamily a(5, 1000, 77, GetParam());
  HashFamily b(5, 1000, 77, GetParam());
  uint64_t pa[HashFamily::kMaxK], pb[HashFamily::kMaxK];
  for (uint64_t key = 0; key < 500; ++key) {
    a.Positions(key, pa);
    b.Positions(key, pb);
    EXPECT_TRUE(std::equal(pa, pa + 5, pb));
  }
}

TEST_P(HashFamilyKindTest, SeedChangesPositions) {
  HashFamily a(5, 100000, 1, GetParam());
  HashFamily b(5, 100000, 2, GetParam());
  uint64_t pa[HashFamily::kMaxK], pb[HashFamily::kMaxK];
  int identical = 0;
  for (uint64_t key = 0; key < 100; ++key) {
    a.Positions(key, pa);
    b.Positions(key, pb);
    identical += std::equal(pa, pa + 5, pb);
  }
  EXPECT_LT(identical, 3);
}

TEST_P(HashFamilyKindTest, RoughlyUniformLoad) {
  constexpr uint64_t kM = 128;
  constexpr uint64_t kKeys = 64000;
  HashFamily family(1, kM, 5, GetParam());
  std::vector<int> counts(kM, 0);
  for (uint64_t key = 0; key < kKeys; ++key) {
    ++counts[family.Position(key, 0)];
  }
  const double expected = static_cast<double>(kKeys) / kM;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.35);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HashFamilyKindTest,
                         ::testing::Values(HashFamily::Kind::kModuloMultiply,
                                           HashFamily::Kind::kDoubleMix),
                         [](const auto& param_info) {
                           return param_info.param ==
                                          HashFamily::Kind::kModuloMultiply
                                      ? "ModuloMultiply"
                                      : "DoubleMix";
                         });

TEST(HashFamilyTest, RejectsKAboveStackBufferBound) {
  // kMaxK bounds every caller's stack position buffer; the family must
  // refuse anything larger.
  EXPECT_DEATH(HashFamily(HashFamily::kMaxK + 1, 100, 0), "1 <= k <= 64");
}

TEST(HashFamilyTest, CompatibilityRequiresAllParams) {
  HashFamily base(5, 100, 7);
  EXPECT_TRUE(base.Compatible(HashFamily(5, 100, 7)));
  EXPECT_FALSE(base.Compatible(HashFamily(4, 100, 7)));
  EXPECT_FALSE(base.Compatible(HashFamily(5, 101, 7)));
  EXPECT_FALSE(base.Compatible(HashFamily(5, 100, 8)));
  EXPECT_FALSE(base.Compatible(
      HashFamily(5, 100, 7, HashFamily::Kind::kDoubleMix)));
}

TEST(HashFamilyTest, DifferentFunctionsWithinFamily) {
  HashFamily family(5, 1000000, 3);
  // With m = 10^6, the 5 functions should almost never coincide.
  int collisions = 0;
  uint64_t p[HashFamily::kMaxK];
  for (uint64_t key = 0; key < 200; ++key) {
    family.Positions(key, p);
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) collisions += (p[i] == p[j]);
    }
  }
  EXPECT_LT(collisions, 4);
}

TEST(HashFamilyTest, BytesKeyRoute) {
  HashFamily family(3, 997, 0);
  uint64_t direct[3];
  family.Positions(Fingerprint64("spectral"), direct);
  uint64_t via_bytes[3];
  family.PositionsForBytes("spectral", via_bytes);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(direct[i], via_bytes[i]);
}

}  // namespace
}  // namespace sbf
