// Parameterized property sweeps tying measured behaviour to the paper's
// analytic models across the operating range: Bloom false-positive rates,
// SBF error ratios, estimator bias across skews, and range-tree bounds
// across domain sizes.

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.h"
#include "core/bloom_filter.h"
#include "core/estimators.h"
#include "core/spectral_bloom_filter.h"
#include "db/range_tree.h"
#include "util/random.h"
#include "workload/multiset_stream.h"

namespace sbf {
namespace {

// --- Bloom FP rate vs theory across gamma ------------------------------------

class BloomFpSweep : public ::testing::TestWithParam<double> {};

TEST_P(BloomFpSweep, MeasuredRateWithinTheoryBand) {
  const double gamma = GetParam();
  constexpr uint64_t kN = 3000;
  constexpr uint32_t kK = 5;
  const uint64_t m = static_cast<uint64_t>(kN * kK / gamma);

  size_t false_positives = 0;
  constexpr size_t kProbesPerRun = 20000;
  constexpr int kRunsLocal = 3;
  for (int run = 0; run < kRunsLocal; ++run) {
    BloomFilter filter(m, kK, 100 + run);
    for (uint64_t key = 0; key < kN; ++key) filter.Add(key);
    for (uint64_t key = 1000000; key < 1000000 + kProbesPerRun; ++key) {
      false_positives += filter.Contains(key);
    }
  }
  const double measured = static_cast<double>(false_positives) /
                          (kProbesPerRun * kRunsLocal);
  const double theory = BloomErrorRate(gamma, kK);
  EXPECT_NEAR(measured, theory, std::max(0.002, theory * 0.35)) << gamma;
}

INSTANTIATE_TEST_SUITE_P(Gammas, BloomFpSweep,
                         ::testing::Values(0.3, 0.5, 0.7, 1.0, 1.5),
                         [](const auto& param_info) {
                           return "gamma" +
                                  std::to_string(
                                      static_cast<int>(param_info.param * 100));
                         });

// --- SBF MS error ratio vs Bloom error across gamma ---------------------------

class SbfErrorSweep : public ::testing::TestWithParam<double> {};

TEST_P(SbfErrorSweep, ErrorRatioTracksBloomError) {
  // Claim 1: P(estimate != truth) equals the Bloom error.
  const double gamma = GetParam();
  constexpr uint64_t kN = 2000;
  constexpr uint32_t kK = 5;
  const uint64_t m = static_cast<uint64_t>(kN * kK / gamma);

  size_t errors = 0;
  constexpr int kRunsLocal = 3;
  for (int run = 0; run < kRunsLocal; ++run) {
    const Multiset data = MakeZipfMultiset(kN, 60000, 0.7, 500 + run);
    SbfOptions options;
    options.m = m;
    options.k = kK;
    options.seed = 600 + run;
    options.backing = CounterBacking::kFixed64;
    SpectralBloomFilter filter(options);
    for (uint64_t key : data.stream) filter.Insert(key);
    for (size_t i = 0; i < data.keys.size(); ++i) {
      errors += filter.Estimate(data.keys[i]) != data.freqs[i];
    }
  }
  const double measured =
      static_cast<double>(errors) / (kN * kRunsLocal);
  const double theory = BloomErrorRate(gamma, kK);
  EXPECT_NEAR(measured, theory, std::max(0.004, theory * 0.4)) << gamma;
}

INSTANTIATE_TEST_SUITE_P(Gammas, SbfErrorSweep,
                         ::testing::Values(0.5, 0.7, 1.0, 1.4),
                         [](const auto& param_info) {
                           return "gamma" +
                                  std::to_string(
                                      static_cast<int>(param_info.param * 100));
                         });

// --- unbiased estimator bias across skews -------------------------------------

class EstimatorBiasSweep : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorBiasSweep, MeanSignedErrorSmallAtEverySkew) {
  const double skew = GetParam();
  const Multiset data = MakeZipfMultiset(1500, 45000, skew, 31);
  SbfOptions options;
  options.m = 3000;
  options.k = 5;
  options.seed = 37;
  options.backing = CounterBacking::kFixed64;
  SpectralBloomFilter filter(options);
  for (uint64_t key : data.stream) filter.Insert(key);

  double signed_sum = 0.0;
  for (size_t i = 0; i < data.keys.size(); ++i) {
    signed_sum += UnbiasedEstimate(filter, data.keys[i]) -
                  static_cast<double>(data.freqs[i]);
  }
  const double mean_frequency = 45000.0 / 1500.0;
  // Mean signed error under 10% of the mean frequency — the aggregate
  // accuracy the Section 3.1 estimator exists for. The paper warns the
  // average-based correction deteriorates on highly skewed data ("a few
  // frequent items can create an error that will be reflected in the
  // estimation of all of the small values"); at skew >= 1.5 we only
  // require the documented degradation to stay bounded.
  const double tolerance = skew >= 1.5 ? 3.0 : 0.1;
  EXPECT_LT(std::abs(signed_sum / data.keys.size()),
            mean_frequency * tolerance)
      << skew;
}

INSTANTIATE_TEST_SUITE_P(Skews, EstimatorBiasSweep,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5),
                         [](const auto& param_info) {
                           return "skew" +
                                  std::to_string(
                                      static_cast<int>(param_info.param * 10));
                         });

// --- range tree bounds across domain sizes -------------------------------------

class RangeTreeDomainSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeTreeDomainSweep, ProbeAndLevelBoundsHold) {
  const uint64_t domain = GetParam();
  SbfOptions options;
  options.m = 200000;
  options.k = 4;
  options.seed = 41;
  options.backing = CounterBacking::kFixed64;
  RangeTreeSbf tree(domain, options);

  // levels = log2(domain): the insert amplification of Theorem 11.
  EXPECT_EQ(tree.levels(),
            static_cast<uint32_t>(std::log2(tree.domain_size())));

  Xoshiro256 rng(domain);
  for (int i = 0; i < 500; ++i) tree.Insert(rng.UniformInt(domain));
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t lo = rng.UniformInt(tree.domain_size() / 2);
    const uint64_t width = rng.UniformInt(tree.domain_size() - lo) + 1;
    const auto estimate = tree.EstimateRange(lo, lo + width);
    const uint32_t bound =
        2 * static_cast<uint32_t>(std::ceil(std::log2(width + 1))) + 2;
    ASSERT_LE(estimate.probes, bound) << "domain " << domain;
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, RangeTreeDomainSweep,
                         ::testing::Values(64, 1024, 65536, 1 << 20),
                         [](const auto& param_info) {
                           return "domain" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace sbf
