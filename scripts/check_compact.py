#!/usr/bin/env python3
"""Perf-smoke gate on the decoded-view compact-backing artifact.

Reads BENCH_compact_decode.json (schema: bench/common/bench_json.h,
written by bench/bench_compact_decode) and fails if the compact backing's
batched estimate is not at least THRESHOLD times faster than the
pre-refactor per-access baseline — the O(group_size) width re-scan every
probe paid before the sampled prefix-offset table and group-granular
GetMany landed. The bench replicates that baseline against the live
layout, so the gate keeps measuring the same gap after the slow path is
gone from the library.

The gate SKIPS — exit 0 with a message — when the artifact has no compact
batched-estimate row carrying the speedup param (an artifact produced by
an older bench binary, or a run that was cut short). A missing artifact
is still a failure: perf-smoke runs the bench right before this gate.

Usage: python3 scripts/check_compact.py [path/to/BENCH_compact_decode.json]
Exit status: 0 pass or skip, 1 gate failure or missing/invalid artifact.
"""

import sys

import gate_common

GATE = "check_compact"
THRESHOLD = 2.5


def main():
    path = gate_common.artifact_path("BENCH_compact_decode.json")
    rows = gate_common.load_rows(GATE, path)
    if rows is None:
        return 1

    speedup = None
    for row in rows:
        params = row.get("params", {})
        if (row.get("name") == "estimate_batched"
                and params.get("backing") == "compact"):
            speedup = params.get("speedup_vs_per_access")

    if speedup is None:
        return gate_common.skip(
            GATE, f"no compact estimate_batched row with a "
                  f"speedup_vs_per_access param in {path}")

    return gate_common.verdict(
        GATE, speedup, THRESHOLD,
        f"compact batched estimate is {speedup:.2f}x the pre-refactor "
        f"per-access path")


if __name__ == "__main__":
    sys.exit(main())
