#!/usr/bin/env python3
"""Perf-smoke gate on the decoded-view compact-backing artifact.

Reads BENCH_compact_decode.json (schema: bench/common/bench_json.h,
written by bench/bench_compact_decode) and fails if the compact backing's
batched estimate is not at least THRESHOLD times faster than the
pre-refactor per-access baseline — the O(group_size) width re-scan every
probe paid before the sampled prefix-offset table and group-granular
GetMany landed. The bench replicates that baseline against the live
layout, so the gate keeps measuring the same gap after the slow path is
gone from the library.

The gate SKIPS — exit 0 with a message — when the artifact has no compact
batched-estimate row carrying the speedup param (an artifact produced by
an older bench binary, or a run that was cut short). A missing artifact
is still a failure: perf-smoke runs the bench right before this gate.

Usage: python3 scripts/check_compact.py [path/to/BENCH_compact_decode.json]
Exit status: 0 pass or skip, 1 gate failure or missing/invalid artifact.
"""

import json
import sys

THRESHOLD = 2.5


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_compact_decode.json"
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_compact: cannot read {path}: {e}")
        return 1

    speedup = None
    for row in rows:
        params = row.get("params", {})
        if (row.get("name") == "estimate_batched"
                and params.get("backing") == "compact"):
            speedup = params.get("speedup_vs_per_access")

    if speedup is None:
        print(f"check_compact: SKIP — no compact estimate_batched row with "
              f"a speedup_vs_per_access param in {path}")
        return 0

    verdict = "PASS" if speedup >= THRESHOLD else "FAIL"
    print(f"check_compact: {verdict} — compact batched estimate is "
          f"{speedup:.2f}x the pre-refactor per-access path "
          f"(threshold {THRESHOLD:.1f}x)")
    return 0 if speedup >= THRESHOLD else 1


if __name__ == "__main__":
    sys.exit(main())
