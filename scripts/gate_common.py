"""Shared plumbing for the perf-smoke gate scripts.

The three gates (check_scaling, check_simd, check_compact) share an exact
contract with the CI perf-smoke job: read a bench JSON artifact (schema:
bench/common/bench_json.h), SKIP with exit 0 when the measurement would be
meaningless on this host, otherwise compare one extracted speedup against
a threshold and print a single PASS/FAIL line. This module owns that
contract so the gates stay behaviorally identical:

  exit 0 — PASS or SKIP (a gate that fails on every small runner teaches
           people to ignore it)
  exit 1 — FAIL, or a missing/invalid/incomplete artifact

Each helper prints with the gate's name as the line prefix, matching the
format the CI logs and the EXPERIMENTS.md transcripts quote.
"""

import json
import sys


def artifact_path(default):
    """The artifact path from argv, or the bench binary's default name."""
    return sys.argv[1] if len(sys.argv) > 1 else default


def load_rows(gate, path):
    """Parses the bench JSON artifact; returns the row list or None after
    printing why (callers return 1 — a missing artifact is a failure,
    since perf-smoke runs the bench right before the gate)."""
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"{gate}: cannot read {path}: {e}")
        return None


def skip(gate, reason):
    """Self-skip: measurement meaningless on this host. Always exit 0."""
    print(f"{gate}: SKIP — {reason}")
    return 0


def fail(gate, reason):
    """Artifact present but missing the rows the gate needs. Exit 1."""
    print(f"{gate}: {reason}")
    return 1


def verdict(gate, speedup, threshold, description):
    """Prints the PASS/FAIL line and returns the gate's exit status.
    `description` reads as '<what> is <speedup>x <context>' and lands
    between the em dash and the threshold suffix."""
    ok = speedup >= threshold
    word = "PASS" if ok else "FAIL"
    print(f"{gate}: {word} — {description} (threshold {threshold:.1f}x)")
    return 0 if ok else 1
