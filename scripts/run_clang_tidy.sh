#!/usr/bin/env bash
# Runs the project's clang-tidy gate (.clang-tidy) the same way CI does:
# over every translation unit in src/, bench/, examples/ and tests/,
# against a fresh compile database, failing on any diagnostic (the config
# sets WarningsAsErrors: '*').
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
# The build directory defaults to build-tidy and is configured on demand.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-tidy}"

tidy="$(command -v clang-tidy || true)"
if [[ -z "$tidy" ]]; then
  echo "run_clang_tidy: clang-tidy not found in PATH" >&2
  exit 2
fi

cmake -B "$build" -S "$repo" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null

# analyzer_fixtures holds deliberately-broken files (seeded violations for
# sbf_analyze.py / check_thread_safety.py); they are not built and must not
# be tidied.
mapfile -t sources < <(
  find "$repo/src" "$repo/bench" "$repo/examples" "$repo/tests" \
    \( -name '*.cc' -o -name '*.cpp' \) \
    ! -path '*/analyzer_fixtures/*' | sort)

echo "run_clang_tidy: ${#sources[@]} translation units"
if command -v run-clang-tidy > /dev/null; then
  run-clang-tidy -p "$build" -quiet "${sources[@]}"
else
  "$tidy" -p "$build" --quiet "${sources[@]}"
fi
echo "run_clang_tidy: clean"
