#!/usr/bin/env python3
"""Project-specific lint rules for libsbf (run by the CI lint job).

Structural rules that generic linters cannot express:

  1. wire-ownership  — raw byte I/O (file streams, manual little-endian
     byte packing) is confined to src/io/; everything else must go through
     the wire::Writer/Reader layer so the framed {magic, version, size,
     crc32c} envelope stays the single encoding authority.
  2. hot-path-checks — the always-on SBF_CHECK macros are banned from the
     designated hot-path headers (batch kernels, BitVector accessors,
     fixed-width counter accessors): per-probe preconditions there must be
     SBF_DCHECK, which compiles out of release builds.
  3. golden-coverage — every kMagic frame tag declared in src/io/wire.h
     must be pinned by at least one golden blob under tests/golden/ whose
     leading four bytes are that magic. A new frame type without a golden
     is exactly how silent wire-format drift starts.
  4. kernel-allocations — the batch-kernel pipelines (src/core/
     batch_kernels.h) and the delta-buffer accumulate/drain kernels
     (src/core/delta_kernels.h — the epoch-merge hot path) must not
     allocate: no new/make_unique/std::vector/std::string/push_back/
     resize/reserve. The kernels' contract is that position rings live on
     the stack and delta maps view caller-owned storage.
  5. tsan-coverage — the CI workflow must keep a dedicated ThreadSanitizer
     leg that runs BOTH concurrency suites (concurrent_sbf_test and
     concurrent_delta_test) with retry + timeout flags. Dropping a suite
     from the TSan leg is how a data race ships while the release leg
     stays green.
  6. simd-differential — every SIMD kernel entry point declared as a
     function-pointer field of simd::BlockKernels (src/core/simd_kernels.h)
     must be exercised by name in tests/simd_differential_test.cc, the
     suite that pins each ISA variant to the scalar reference. A vector
     kernel without a registered differential test is an unverified
     bit-for-bit equivalence claim.
  7. decode-view-differential — every CounterVector backing must either
     override the decoded-view hooks (DecodeBlock and friends) or opt in
     to the naive base-class loops via AllowsNaiveDecode (the SBF_DCHECK
     in the defaults enforces the same rule at runtime); and every backing
     that overrides them must be exercised by name in
     tests/decode_view_test.cc, the suite that pins each override to the
     scalar Get/Set reference across group boundaries, rebuilds and
     widenings. An unregistered override is an unverified equivalence
     claim, exactly like an untested SIMD kernel.
  8. durable-record-coverage — every WalRecordType enumerator declared in
     src/io/delta_log.h must appear by name in
     tests/crash_recovery_test.cc, the crash-matrix suite that replays
     logs through recovery. A record type the recovery tests never
     mention is a durability path that has never survived a simulated
     crash.
  9. static-analysis-coverage — the CI workflow must keep BOTH semantic
     static-analysis gates: a clang thread-safety leg that configures with
     -DSBF_THREAD_SAFETY=ON and runs scripts/check_thread_safety.py, and a
     lint-job step that runs scripts/sbf_analyze.py with
     --require-libclang (so a missing libclang fails CI instead of
     silently skipping). Dropping either gate un-checks every annotated
     lock contract and atomic protocol at once.

Run from anywhere inside the repository:  python3 scripts/sbf_lint.py
Self-test (used by ctest):                python3 scripts/sbf_lint.py --self-test
Exit status: 0 clean, 1 violations, 2 internal error.
"""

import pathlib
import re
import struct
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
GOLDEN_DIR = REPO / "tests" / "golden"
WIRE_HEADER = SRC / "io" / "wire.h"

# Rule 2: headers whose accessors sit inside per-probe loops.
HOT_PATH_FILES = [
    SRC / "core" / "batch_kernels.h",
    SRC / "core" / "delta_kernels.h",
    SRC / "core" / "simd_kernels.h",
    SRC / "bitstream" / "bit_vector.h",
    SRC / "sai" / "fixed_counter_vector.h",
    SRC / "util" / "prefetch.h",
]

# Rule 4: the batch-kernel pipelines, the delta accumulate/drain kernels
# (every buffered insert and every epoch merge runs through them), and the
# SIMD block-kernel translation units.
KERNEL_FILES = [
    SRC / "core" / "batch_kernels.h",
    SRC / "core" / "delta_kernels.h",
    SRC / "core" / "simd_kernels_generic.cc",
    SRC / "core" / "simd_kernels_sse2.cc",
    SRC / "core" / "simd_kernels_avx2.cc",
]

# Rule 6: the kernel dispatch table and the differential suite that must
# cover every one of its entry points.
SIMD_KERNELS_HEADER = SRC / "core" / "simd_kernels.h"
SIMD_DIFFERENTIAL_TEST = REPO / "tests" / "simd_differential_test.cc"
# A function-pointer field of the BlockKernels table, e.g.
#   uint64_t (*blocked_min64)(const uint64_t* block, ...);
SIMD_FIELD = re.compile(r"\(\s*\*\s*(\w+)\s*\)\s*\(")

# Rule 7: counter-vector backings and the decoded-view differential suite.
DECODE_VIEW_TEST = REPO / "tests" / "decode_view_test.cc"
BACKING_DECL = re.compile(r"class\s+(\w+)\s+(?:final\s+)?:\s*public\s+"
                          r"CounterVector\b")

# Rule 8: the WAL record-type enum and the crash-matrix suite that must
# exercise every enumerator through simulated-crash recovery.
DELTA_LOG_HEADER = SRC / "io" / "delta_log.h"
CRASH_RECOVERY_TEST = REPO / "tests" / "crash_recovery_test.cc"
WAL_RECORD_ENUM = re.compile(
    r"enum\s+class\s+WalRecordType[^{]*\{([^}]*)\}", re.DOTALL)
WAL_RECORD_ENUMERATOR = re.compile(r"\b(k\w+)\s*=")

# Rule 5: the CI workflow and what its TSan leg must keep running.
CI_WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"
TSAN_REQUIRED_SUITES = ["concurrent_sbf_test", "concurrent_delta_test"]
TSAN_REQUIRED_FLAGS = ["--repeat until-pass:1", "--timeout 300"]

RAW_IO_PATTERNS = [
    (re.compile(r"std::[io]fstream|std::fstream"), "file stream"),
    (re.compile(r"\bfopen\s*\("), "fopen"),
    (re.compile(r"\bfread\s*\("), "fread"),
    (re.compile(r"\bfwrite\s*\("), "fwrite"),
    # Manual little-endian byte extraction, e.g. (v >> 8) & 0xFF.
    (re.compile(r">>\s*(?:8|16|24|32|40|48|56)\s*\)?\s*&\s*0x[fF]{2}\b"),
     "manual byte packing"),
]

CHECK_PATTERN = re.compile(r"\bSBF_CHECK(?:_MSG)?\s*\(")

ALLOC_PATTERNS = [
    (re.compile(r"\bnew\s"), "new"),
    (re.compile(r"std::make_unique|std::make_shared"), "make_unique/shared"),
    (re.compile(r"std::vector\s*<"), "std::vector"),
    (re.compile(r"std::string\b"), "std::string"),
    (re.compile(r"\.push_back\s*\(|\.emplace_back\s*\("), "push_back"),
    (re.compile(r"\.resize\s*\(|\.reserve\s*\("), "resize/reserve"),
    (re.compile(r"\bmalloc\s*\("), "malloc"),
]

MAGIC_DECL = re.compile(
    r"kMagic\w+\s*=\s*FourCc\('(.)',\s*'(.)',\s*'(.)',\s*'(.)'\)")


def source_files(root):
    for ext in ("*.cc", "*.h", "*.cpp"):
        yield from root.rglob(ext)


def iter_code_lines(path):
    """Yields (lineno, line) with block/line comments stripped."""
    in_block = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if in_block:
            end = line.find("*/")
            if end == -1:
                continue
            line = line[end + 2:]
            in_block = False
        while True:
            start = line.find("/*")
            if start == -1:
                break
            end = line.find("*/", start + 2)
            if end == -1:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + line[end + 2:]
        cut = line.find("//")
        if cut != -1:
            line = line[:cut]
        yield lineno, line


def check_wire_ownership(violations):
    for path in source_files(SRC):
        if SRC / "io" in path.parents:
            continue
        for lineno, line in iter_code_lines(path):
            # Console output is not wire I/O.
            if "stdout" in line or "stderr" in line:
                continue
            for pattern, what in RAW_IO_PATTERNS:
                if pattern.search(line):
                    violations.append(
                        f"{path.relative_to(REPO)}:{lineno}: "
                        f"wire-ownership: {what} outside src/io/ — encode "
                        f"through wire::Writer/Reader")


def check_hot_path_checks(violations):
    for path in HOT_PATH_FILES:
        for lineno, line in iter_code_lines(path):
            if CHECK_PATTERN.search(line):
                violations.append(
                    f"{path.relative_to(REPO)}:{lineno}: "
                    f"hot-path-checks: SBF_CHECK in a hot-path header — "
                    f"use SBF_DCHECK for per-probe preconditions")


def check_golden_coverage(violations):
    declared = {}
    for match in MAGIC_DECL.finditer(WIRE_HEADER.read_text()):
        magic = struct.unpack("<I", "".join(match.groups()).encode())[0]
        declared[magic] = "".join(match.groups())
    covered = set()
    for blob in sorted(GOLDEN_DIR.glob("*.bin")):
        head = blob.read_bytes()[:4]
        if len(head) == 4:
            covered.add(struct.unpack("<I", head)[0])
    for magic, tag in sorted(declared.items()):
        if magic not in covered:
            violations.append(
                f"src/io/wire.h: golden-coverage: frame tag '{tag}' has no "
                f"golden blob under tests/golden/ — add one (see "
                f"golden_wire_test.cc regeneration notes)")


def check_kernel_allocations(violations):
    for path in KERNEL_FILES:
        for lineno, line in iter_code_lines(path):
            for pattern, what in ALLOC_PATTERNS:
                if pattern.search(line):
                    violations.append(
                        f"{path.relative_to(REPO)}:{lineno}: "
                        f"kernel-allocations: {what} inside a batch-kernel "
                        f"pipeline — kernels must not allocate")


def check_tsan_coverage(violations, workflow_text=None):
    """The dedicated TSan leg must run both concurrency suites with the
    retry + timeout flags (flaky-looking hangs under TSan must fail the
    leg, not wedge it)."""
    text = (CI_WORKFLOW.read_text()
            if workflow_text is None else workflow_text)
    # Split the workflow into top-level jobs (keys at two-space indent) and
    # keep those that are ThreadSanitizer legs: named *tsan* or configured
    # with sanitize: thread.
    jobs = {}
    name = None
    for line in text.splitlines():
        m = re.match(r"^  ([A-Za-z0-9_-]+):\s*$", line)
        if m:
            name = m.group(1)
            jobs[name] = []
        elif name is not None:
            jobs[name].append(line)
    tsan_text = "\n".join(
        "\n".join(body) for job, body in jobs.items()
        if "tsan" in job or "sanitize: thread" in "\n".join(body))
    for suite in TSAN_REQUIRED_SUITES:
        if suite not in tsan_text:
            violations.append(
                f".github/workflows/ci.yml: tsan-coverage: {suite} is not "
                f"exercised by any ThreadSanitizer leg")
    for flag in TSAN_REQUIRED_FLAGS:
        if flag not in tsan_text:
            violations.append(
                f".github/workflows/ci.yml: tsan-coverage: TSan ctest "
                f"invocation lost the '{flag}' flag")


def check_static_analysis_coverage(violations, workflow_text=None):
    """Both semantic gates must stay wired into CI: a job that builds with
    -DSBF_THREAD_SAFETY=ON and runs check_thread_safety.py, and a lint step
    that runs sbf_analyze.py --require-libclang."""
    text = (CI_WORKFLOW.read_text()
            if workflow_text is None else workflow_text)
    jobs = {}
    name = None
    for line in text.splitlines():
        m = re.match(r"^  ([A-Za-z0-9_-]+):\s*$", line)
        if m:
            name = m.group(1)
            jobs[name] = []
        elif name is not None:
            jobs[name].append(line)
    bodies = {job: "\n".join(body) for job, body in jobs.items()}

    ts_jobs = [b for b in bodies.values()
               if "-DSBF_THREAD_SAFETY=ON" in b
               and "check_thread_safety.py" in b]
    if not ts_jobs:
        violations.append(
            ".github/workflows/ci.yml: static-analysis-coverage: no job "
            "both configures with -DSBF_THREAD_SAFETY=ON and runs "
            "scripts/check_thread_safety.py — the annotated lock contracts "
            "are unchecked")

    analyze_jobs = [b for b in bodies.values()
                    if "sbf_analyze.py" in b and "--require-libclang" in b]
    if not analyze_jobs:
        violations.append(
            ".github/workflows/ci.yml: static-analysis-coverage: no job "
            "runs scripts/sbf_analyze.py with --require-libclang — the "
            "memory-order/alloc-free/nodiscard/wire contracts are "
            "unchecked (and a missing libclang would skip silently)")


def simd_kernel_entry_points():
    """Names of the function-pointer fields of simd::BlockKernels."""
    fields = []
    for _, line in iter_code_lines(SIMD_KERNELS_HEADER):
        for match in SIMD_FIELD.finditer(line):
            fields.append(match.group(1))
    return fields


def check_simd_differential(violations, test_text=None):
    """Every kernel entry point needs a registered scalar-differential
    test: the suite must mention the field by name (it drives each ISA's
    implementation against the generic reference)."""
    fields = simd_kernel_entry_points()
    if not fields:
        violations.append(
            "src/core/simd_kernels.h: simd-differential: no BlockKernels "
            "entry points parsed — the table moved or the field syntax "
            "changed; update sbf_lint.py's SIMD_FIELD pattern")
        return
    if test_text is None:
        if not SIMD_DIFFERENTIAL_TEST.exists():
            violations.append(
                "tests/simd_differential_test.cc: simd-differential: the "
                "differential suite is missing")
            return
        test_text = SIMD_DIFFERENTIAL_TEST.read_text()
    for field in fields:
        if field not in test_text:
            violations.append(
                f"tests/simd_differential_test.cc: simd-differential: "
                f"kernel entry point '{field}' has no scalar-differential "
                f"coverage — every ISA variant must be pinned to the "
                f"generic reference")


def counter_vector_backings():
    """(class name, header path, header text) of every concrete backing."""
    backings = []
    for path in source_files(SRC):
        if not path.name.endswith(".h"):
            continue
        text = "\n".join(line for _, line in iter_code_lines(path))
        for match in BACKING_DECL.finditer(text):
            backings.append((match.group(1), path, text))
    return backings


def check_decode_view_differential(violations, test_text=None):
    """Every backing either overrides the decoded-view hooks or opts in to
    the naive loops; every override is pinned by the differential suite."""
    backings = counter_vector_backings()
    if not backings:
        violations.append(
            "src/sai: decode-view-differential: no CounterVector backings "
            "parsed — the class declarations moved; update sbf_lint.py's "
            "BACKING_DECL pattern")
        return
    if test_text is None:
        if not DECODE_VIEW_TEST.exists():
            violations.append(
                "tests/decode_view_test.cc: decode-view-differential: the "
                "decoded-view differential suite is missing")
            return
        test_text = DECODE_VIEW_TEST.read_text()
    for name, path, text in backings:
        overrides = "DecodeBlock" in text
        if not overrides and "AllowsNaiveDecode" not in text:
            violations.append(
                f"{path.relative_to(REPO)}: decode-view-differential: "
                f"backing '{name}' neither overrides the decoded-view hooks "
                f"(DecodeBlock/GetMany/EncodeBlock) nor opts in via "
                f"AllowsNaiveDecode — re-scanning the group per access is "
                f"the pathology the decoded-view layer removed")
        if overrides and name not in test_text:
            violations.append(
                f"tests/decode_view_test.cc: decode-view-differential: "
                f"backing '{name}' overrides the decoded-view hooks but has "
                f"no registered differential coverage — every override must "
                f"be pinned to the scalar reference")


def wal_record_types():
    """Enumerator names of io::WalRecordType (comment-stripped parse)."""
    text = "\n".join(line for _, line in iter_code_lines(DELTA_LOG_HEADER))
    match = WAL_RECORD_ENUM.search(text)
    if not match:
        return []
    return WAL_RECORD_ENUMERATOR.findall(match.group(1))


def check_durable_record_coverage(violations, test_text=None):
    """Every WAL record type must be exercised by the crash-matrix suite:
    a record kind recovery has never replayed is untested durability."""
    enumerators = wal_record_types()
    if not enumerators:
        violations.append(
            "src/io/delta_log.h: durable-record-coverage: no WalRecordType "
            "enumerators parsed — the enum moved or changed syntax; update "
            "sbf_lint.py's WAL_RECORD_ENUM pattern")
        return
    if test_text is None:
        if not CRASH_RECOVERY_TEST.exists():
            violations.append(
                "tests/crash_recovery_test.cc: durable-record-coverage: the "
                "crash-matrix suite is missing")
            return
        test_text = CRASH_RECOVERY_TEST.read_text()
    for name in enumerators:
        if name not in test_text:
            violations.append(
                f"tests/crash_recovery_test.cc: durable-record-coverage: "
                f"WAL record type '{name}' is never exercised by the "
                f"crash-matrix suite — every record kind must survive a "
                f"simulated crash and replay")


def run_lint():
    violations = []
    check_wire_ownership(violations)
    check_hot_path_checks(violations)
    check_golden_coverage(violations)
    check_kernel_allocations(violations)
    check_tsan_coverage(violations)
    check_static_analysis_coverage(violations)
    check_simd_differential(violations)
    check_decode_view_differential(violations)
    check_durable_record_coverage(violations)
    for v in violations:
        print(v)
    if violations:
        print(f"sbf_lint: {len(violations)} violation(s)")
        return 1
    print("sbf_lint: clean")
    return 0


def self_test():
    """Verifies each rule actually fires on a synthetic violation."""
    import tempfile

    failures = []

    def expect(rule, text, should_fire, label):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".cc", delete=False) as tmp:
            tmp.write(text)
            name = pathlib.Path(tmp.name)
        try:
            fired = False
            for lineno, line in iter_code_lines(name):
                if "stdout" in line or "stderr" in line:
                    continue
                for pattern, _ in rule:
                    if pattern.search(line):
                        fired = True
            if fired != should_fire:
                failures.append(f"{label}: fired={fired}, want {should_fire}")
        finally:
            name.unlink()

    expect(RAW_IO_PATTERNS, 'std::ofstream out("x");', True, "raw-io stream")
    expect(RAW_IO_PATTERNS, "b = (v >> 8) & 0xFF;", True, "raw-io packing")
    expect(RAW_IO_PATTERNS, "// std::ofstream in a comment", False,
           "raw-io comment")
    expect(RAW_IO_PATTERNS, "std::fwrite(s.data(), 1, n, stdout);", False,
           "raw-io stdout exemption")
    expect([(CHECK_PATTERN, "check")], "SBF_CHECK(i < m_);", True,
           "hot-path check")
    expect([(CHECK_PATTERN, "check")], "SBF_DCHECK(i < m_);", False,
           "hot-path dcheck allowed")
    expect(ALLOC_PATTERNS, "std::vector<uint64_t> ring(n);", True,
           "kernel alloc")
    expect(ALLOC_PATTERNS, "uint64_t ring[kBatchWindow * kMaxK];", False,
           "kernel stack array")

    # golden-coverage fires when a magic is missing from the covered set.
    declared = MAGIC_DECL.findall(WIRE_HEADER.read_text())
    if not declared:
        failures.append("golden-coverage: no kMagic declarations parsed")
    violations = []
    check_golden_coverage(violations)
    if violations:
        failures.append(f"golden-coverage: tree not clean: {violations}")

    # tsan-coverage fires when a suite or flag is dropped from the TSan
    # leg, and stays quiet on the real workflow.
    synthetic = ("tsan-broken:\n    sanitize: thread\n"
                 "    run: ctest -R concurrent_sbf_test\n")
    fired = []
    check_tsan_coverage(fired, workflow_text=synthetic)
    if not any("concurrent_delta_test" in v for v in fired):
        failures.append("tsan-coverage: missing suite did not fire")
    if not any("--repeat until-pass:1" in v for v in fired):
        failures.append("tsan-coverage: missing retry flag did not fire")
    clean = []
    check_tsan_coverage(clean)
    if clean:
        failures.append(f"tsan-coverage: tree not clean: {clean}")

    # static-analysis-coverage fires when either semantic gate is dropped
    # from the workflow, and stays quiet on the real tree.
    missing_ts = ("lint:\n    steps:\n"
                  "      - run: python3 scripts/sbf_analyze.py "
                  "--require-libclang\n")
    fired = []
    check_static_analysis_coverage(fired, workflow_text=missing_ts)
    if not any("check_thread_safety.py" in v for v in fired):
        failures.append(
            "static-analysis-coverage: dropped thread-safety leg did not "
            "fire")
    missing_analyze = ("thread-safety:\n    steps:\n"
                       "      - run: cmake -B b -DSBF_THREAD_SAFETY=ON\n"
                       "      - run: python3 scripts/check_thread_safety.py\n")
    fired = []
    check_static_analysis_coverage(fired, workflow_text=missing_analyze)
    if not any("sbf_analyze.py" in v for v in fired):
        failures.append(
            "static-analysis-coverage: dropped analyzer step did not fire")
    clean = []
    check_static_analysis_coverage(clean)
    if clean:
        failures.append(f"static-analysis-coverage: tree not clean: {clean}")

    # simd-differential fires when an entry point has no coverage, and
    # stays quiet on the real tree.
    fields = simd_kernel_entry_points()
    if len(fields) < 2:
        failures.append(
            f"simd-differential: expected several BlockKernels entry "
            f"points, parsed {fields}")
    else:
        synthetic = " ".join(fields[1:])  # drop one field's coverage
        fired = []
        check_simd_differential(fired, test_text=synthetic)
        if not any(fields[0] in v for v in fired):
            failures.append(
                "simd-differential: uncovered entry point did not fire")
        clean = []
        check_simd_differential(clean)
        if clean:
            failures.append(f"simd-differential: tree not clean: {clean}")

    # decode-view-differential fires when a backing's override loses its
    # coverage, and stays quiet on the real tree.
    backings = [name for name, _, text in counter_vector_backings()
                if "DecodeBlock" in text]
    if len(backings) < 2:
        failures.append(
            f"decode-view-differential: expected several overriding "
            f"backings, parsed {backings}")
    else:
        synthetic = " ".join(backings[1:])  # drop one backing's coverage
        fired = []
        check_decode_view_differential(fired, test_text=synthetic)
        if not any(backings[0] in v for v in fired):
            failures.append(
                "decode-view-differential: uncovered backing did not fire")
        clean = []
        check_decode_view_differential(clean)
        if clean:
            failures.append(
                f"decode-view-differential: tree not clean: {clean}")

    # durable-record-coverage fires when a WAL record type loses its
    # crash-matrix coverage, and stays quiet on the real tree.
    enumerators = wal_record_types()
    if len(enumerators) < 2:
        failures.append(
            f"durable-record-coverage: expected several WalRecordType "
            f"enumerators, parsed {enumerators}")
    else:
        synthetic = " ".join(enumerators[1:])  # drop one type's coverage
        fired = []
        check_durable_record_coverage(fired, test_text=synthetic)
        if not any(enumerators[0] in v for v in fired):
            failures.append(
                "durable-record-coverage: uncovered record type did not "
                "fire")
        clean = []
        check_durable_record_coverage(clean)
        if clean:
            failures.append(
                f"durable-record-coverage: tree not clean: {clean}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 1
    print(f"sbf_lint self-test: all rules fire correctly "
          f"({len(declared)} frame tags covered)")
    return 0


def main():
    if "--self-test" in sys.argv:
        code = self_test()
        if code != 0:
            return code
        return run_lint()
    return run_lint()


if __name__ == "__main__":
    sys.exit(main())
