#!/usr/bin/env python3
"""Semantic contract analyzer for libsbf, built on libclang (DESIGN.md §11).

Where scripts/sbf_lint.py enforces structural rules with regexes, this
analyzer parses real ASTs out of compile_commands.json and checks contracts
that need semantic information:

  memory-order     every std::atomic operation must spell its memory_order
                   explicitly (including the CAS failure order); seq_cst is
                   reserved for the documented (field, op) allowlist below,
                   which must stay described in DESIGN.md §11; and every
                   release-class write to a field must have a matching
                   acquire-or-stronger load of the SAME field somewhere —
                   an unpaired release publishes to nobody.
  alloc-free       no allocation is reachable from the batch/delta/SIMD
                   kernel entry points: the call graph from every function
                   defined in the kernel files is walked to operator new,
                   malloc-family calls and allocating std:: members.
                   Template bodies whose calls do not resolve are scanned
                   at token level for the same symbols (over-approximate,
                   which is the safe direction for an allocation ban).
  nodiscard        every public function returning Status/StatusOr must be
                   covered by [[nodiscard]] — on the function itself or on
                   the returned class (src/util/status.h declares both
                   class-level). A dropped Status is a swallowed failure.
  wire-ownership   file-stream and byte-level file I/O calls are confined
                   to src/io/, resolved through the AST (a member function
                   named `read` on a repo class is fine; a call that
                   resolves to POSIX read(2) outside src/io/ is not).
                   Console output to stdout/stderr is exempt, matching
                   sbf_lint rule 1.

Usage:
  python3 scripts/sbf_analyze.py [--compile-commands build/compile_commands.json]
  python3 scripts/sbf_analyze.py --self-test        # seeded-violation fixtures
  python3 scripts/sbf_analyze.py --require-libclang # CI: absence is an error

Exit status: 0 clean, 1 violations (or a fixture failing to trip its
check), 2 infrastructure error, 77 libclang unavailable (skip; ctest maps
it to SKIP via SKIP_RETURN_CODE, CI passes --require-libclang instead).
"""

import argparse
import glob
import json
import os
import pathlib
import re
import shlex
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = REPO / "tests" / "analyzer_fixtures"
DESIGN = REPO / "DESIGN.md"
SKIP_EXIT = 77

# --------------------------------------------------------------------------
# Check 1: memory-order discipline.

ATOMIC_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "test_and_set", "clear",
}
ORDER_NAMES = {"relaxed", "consume", "acquire", "release", "acq_rel",
               "seq_cst"}
# Ops that can publish under release/acq_rel ordering.
WRITE_OPS = ATOMIC_OPS - {"load"}

# The ONLY (field, op) pairs allowed to use memory_order_seq_cst, each tied
# to the window-handshake protocol documented in DESIGN.md §11: the writer's
# seq-cst {enter live_writers, read pending_ptr} must totally order against
# the migrator's seq-cst {publish pending_ptr, spin on live_writers} — the
# Dekker-style store/load pattern that acquire/release cannot express.
SEQ_CST_ALLOWLIST = {
    ("live_writers", "fetch_add"):
        "writer enter side of the window handshake (DESIGN.md §11)",
    ("live_writers", "load"):
        "migrator drain spin of the window handshake (DESIGN.md §11)",
    ("pending_ptr", "load"):
        "writer window-observation read of the handshake (DESIGN.md §11)",
    ("pending_ptr", "store"):
        "migrator window-open publication of the handshake (DESIGN.md §11)",
}

# --------------------------------------------------------------------------
# Check 2: allocation freedom of the kernel entry points.

# (path, extra parse flags): the AVX2 TU needs its target feature to parse
# standalone (mirrors src/CMakeLists.txt's COMPILE_OPTIONS; SSE2 is
# baseline x86-64). simd_kernels.cc is the runtime dispatcher, included
# because its Init path must not allocate either.
KERNEL_SPECS = [
    (SRC / "core" / "batch_kernels.h", []),
    (SRC / "core" / "delta_kernels.h", []),
    (SRC / "core" / "simd_kernels.cc", []),
    (SRC / "core" / "simd_kernels_generic.cc", []),
    (SRC / "core" / "simd_kernels_sse2.cc", []),
    (SRC / "core" / "simd_kernels_avx2.cc", ["-mavx2"]),
]
BANNED_ALLOC_FUNCS = {"malloc", "calloc", "realloc", "aligned_alloc",
                      "posix_memalign", "strdup", "make_unique",
                      "make_shared"}
BANNED_ALLOC_MEMBERS = {"push_back", "emplace_back", "push_front", "resize",
                        "reserve", "emplace", "insert", "append", "assign",
                        "shrink_to_fit"}

# --------------------------------------------------------------------------
# Check 4: wire ownership.

BANNED_IO_FUNCS = {
    "fopen", "freopen", "fdopen", "fwrite", "fread", "fseek", "ftell",
    "rewind", "fflush", "fclose", "open", "openat", "creat", "write",
    "read", "pwrite", "pread", "pwritev", "preadv", "fsync", "fdatasync",
    "ftruncate", "rename", "renameat", "unlink", "unlinkat", "mkstemp",
    "mkostemp",
}
BANNED_IO_HELPERS = {"ReadFileBytes", "WriteFileBytes"}
FSTREAM_TYPE = re.compile(r"\b(?:basic_)?[io]?fstream\b")


class Violation:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def __str__(self):
        try:
            rel = pathlib.Path(self.path).resolve().relative_to(REPO)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: {self.check}: {self.message}"


# --------------------------------------------------------------------------
# libclang loading. The python bindings and the shared library both live in
# version-suffixed locations on Debian/Ubuntu; try the obvious spots before
# giving up, and give up LOUDLY with the skip exit code.

def _candidate_binding_dirs():
    out = []
    for pattern in ("/usr/lib/llvm-*/lib/python3*/dist-packages",
                    "/usr/lib/llvm-*/lib/python3*/site-packages",
                    "/usr/lib/llvm-*/lib/python3/dist-packages"):
        out.extend(glob.glob(pattern))
    return sorted(out, reverse=True)


def _candidate_libraries():
    libs = []
    for pattern in ("/usr/lib/llvm-*/lib/libclang.so*",
                    "/usr/lib/llvm-*/lib/libclang-*.so*",
                    "/usr/lib/*-linux-gnu/libclang.so*",
                    "/usr/lib/*-linux-gnu/libclang-*.so*"):
        libs.extend(p for p in glob.glob(pattern) if "libclang-cpp" not in p)
    return sorted(libs, reverse=True)


def load_cindex(require):
    """Returns (cindex module, Index) or exits with SKIP_EXIT/2."""
    try:
        import clang.cindex as cindex  # noqa: F401
    except ImportError:
        sys.path.extend(_candidate_binding_dirs())
        try:
            import clang.cindex as cindex  # noqa: F401
        except ImportError:
            cindex = None
    if cindex is None:
        msg = ("sbf_analyze: python libclang bindings not found (looked for "
               "module 'clang.cindex' on sys.path and under /usr/lib/llvm-*)")
        if require:
            print(msg, file=sys.stderr)
            sys.exit(2)
        print(f"{msg} — SKIPPING the contract analysis. Install "
              f"python3-clang to run it locally; CI runs it for real.")
        sys.exit(SKIP_EXIT)

    explicit = os.environ.get("SBF_LIBCLANG")
    candidates = [explicit] if explicit else _candidate_libraries()
    index = None
    if not candidates:
        # Let the bindings try their default lookup.
        candidates = [None]
    last_error = None
    for lib in candidates:
        try:
            if lib is not None:
                cindex.Config.set_library_file(lib)
            index = cindex.Index.create()
            break
        except Exception as e:  # LibclangError or load failure
            last_error = e
            index = None
    if index is None:
        msg = (f"sbf_analyze: libclang shared library could not be loaded "
               f"(tried {candidates!r}; set SBF_LIBCLANG to the .so path): "
               f"{last_error}")
        if require:
            print(msg, file=sys.stderr)
            sys.exit(2)
        print(f"{msg} — SKIPPING the contract analysis.")
        sys.exit(SKIP_EXIT)
    return cindex, index


# --------------------------------------------------------------------------
# Compile database and parsing.

def load_compile_db(path):
    """{realpath of source: clang arg list} for every entry under src/."""
    with open(path) as f:
        entries = json.load(f)
    db = {}
    for entry in entries:
        source = os.path.realpath(os.path.join(entry.get("directory", "."),
                                               entry["file"]))
        if not source.startswith(str(SRC) + os.sep):
            continue
        argv = entry.get("arguments") or shlex.split(entry["command"])
        args = []
        skip_next = False
        for arg in argv[1:]:
            if skip_next:
                skip_next = False
                continue
            if arg == "-o":
                skip_next = True
                continue
            if arg == "-c":
                continue
            if not arg.startswith("-") and os.path.realpath(
                    os.path.join(entry.get("directory", "."),
                                 arg)) == source:
                continue
            args.append(arg)
        db[source] = args
    return db


def parse_tu(cindex, index, path, args):
    tu = index.parse(path, args=args)
    fatal = [d for d in tu.diagnostics
             if d.severity >= cindex.Diagnostic.Fatal]
    errors = [d for d in tu.diagnostics
              if d.severity == cindex.Diagnostic.Error]
    return tu, fatal, errors


def file_tokens(cursor, cindex):
    """Non-comment token spellings of a cursor's extent."""
    return [t.spelling for t in cursor.get_tokens()
            if t.kind != cindex.TokenKind.COMMENT]


def in_namespace(cursor, name):
    parent = cursor.semantic_parent
    while parent is not None and parent.kind is not None:
        if parent.kind.name == "NAMESPACE" and parent.spelling == name:
            return True
        if parent.kind.name == "TRANSLATION_UNIT":
            return False
        parent = parent.semantic_parent
    return False


def is_free_function(cursor):
    """True when the referenced decl is a free function (global or in a
    namespace), not a class member — disambiguates POSIX read/write from
    methods that happen to share the name."""
    parent = cursor.semantic_parent
    while parent is not None and parent.kind is not None:
        kind = parent.kind.name
        if kind in ("CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE",
                    "CLASS_TEMPLATE_PARTIAL_SPECIALIZATION"):
            return False
        if kind == "TRANSLATION_UNIT":
            return True
        parent = parent.semantic_parent
    return True


# --------------------------------------------------------------------------
# Check 1 implementation.

def collect_atomic_sites(cindex, tu, within_prefixes):
    """[(path, line, col, field, op, [orders])] for atomic ops in scope."""
    sites = []
    for c in tu.cursor.walk_preorder():
        if c.kind != cindex.CursorKind.CALL_EXPR:
            continue
        if c.spelling not in ATOMIC_OPS:
            continue
        loc = c.location
        if loc.file is None:
            continue
        path = os.path.realpath(loc.file.name)
        if not any(path.startswith(p) for p in within_prefixes):
            continue
        ref = c.referenced
        atomic = False
        if ref is not None and ref.semantic_parent is not None:
            parent = ref.semantic_parent.spelling
            atomic = parent.startswith("atomic") or "atomic" in parent
        if not atomic:
            # Unresolved (dependent) call, or a non-atomic method that
            # happens to share a name — fall back to the base type.
            children = list(c.get_children())
            if children and "atomic" in children[0].type.spelling:
                atomic = True
        if not atomic:
            continue
        toks = file_tokens(c, cindex)
        orders = []
        for i, t in enumerate(toks):
            if t.startswith("memory_order_"):
                orders.append(t[len("memory_order_"):])
            elif (t == "memory_order" and i + 2 < len(toks)
                  and toks[i + 1] == "::" and toks[i + 2] in ORDER_NAMES):
                orders.append(toks[i + 2])
        field = "?"
        if c.spelling in toks:
            i = toks.index(c.spelling)
            if i >= 2 and toks[i - 1] in (".", "->"):
                field = toks[i - 2]
        sites.append((path, loc.line, loc.column, field, c.spelling, orders))
    return sites


def check_memory_order(sites, allowlist, check_design_tie=True):
    violations = []
    seen = set()
    deduped = []
    for site in sites:
        key = site[:3]
        if key in seen:
            continue
        seen.add(key)
        deduped.append(site)

    by_field = {}
    for path, line, _col, field, op, orders in deduped:
        by_field.setdefault(field, []).append((path, line, op, orders))
        if not orders:
            violations.append(Violation(
                "memory-order", path, line,
                f"atomic {field}.{op} with implicit memory order — every "
                f"atomic op must spell its ordering (DESIGN.md §11)"))
            continue
        if op.startswith("compare_exchange") and len(orders) < 2:
            violations.append(Violation(
                "memory-order", path, line,
                f"atomic {field}.{op} spells only the success order — the "
                f"failure order must be explicit too"))
        if "seq_cst" in orders and (field, op) not in allowlist:
            violations.append(Violation(
                "memory-order", path, line,
                f"atomic {field}.{op} uses memory_order_seq_cst but "
                f"({field}, {op}) is not on the documented allowlist — "
                f"either justify it in DESIGN.md §11 and add it to "
                f"sbf_analyze.py's SEQ_CST_ALLOWLIST, or weaken the order"))

    # Release-pairing: a release-class write to a field publishes to the
    # acquire-or-stronger loads of that SAME field; with none, nothing can
    # ever synchronize with the write.
    for field, ops in sorted(by_field.items()):
        release_writes = [(p, l) for p, l, op, orders in ops
                          if op in WRITE_OPS
                          and ("release" in orders or "acq_rel" in orders)]
        # A CAS with an acquire-class order performs an acquire load of the
        # field too, so it counts as the pairing read.
        paired_reads = [1 for _p, _l, op, orders in ops
                        if (op == "load"
                            or op.startswith("compare_exchange"))
                        and any(o in ("acquire", "acq_rel", "seq_cst")
                                for o in orders)]
        if release_writes and not paired_reads:
            path, line = release_writes[0]
            violations.append(Violation(
                "memory-order", path, line,
                f"release-ordered write to atomic field '{field}' has no "
                f"matching acquire/seq_cst load of the same field anywhere "
                f"in the analyzed sources — an unpaired release "
                f"synchronizes with nothing (DESIGN.md §11 pairing table)"))

    if check_design_tie:
        violations.extend(check_design_allowlist_tie(allowlist))
    return violations


def check_design_allowlist_tie(allowlist):
    """Every allowlisted field must be described in DESIGN.md §11, so the
    allowlist cannot silently outgrow its documentation."""
    violations = []
    text = DESIGN.read_text() if DESIGN.exists() else ""
    match = re.search(r"^## 11\..*?(?=^## |\Z)", text,
                      re.MULTILINE | re.DOTALL)
    section = match.group(0) if match else ""
    if not section:
        violations.append(Violation(
            "memory-order", str(DESIGN), 1,
            "DESIGN.md has no '## 11.' section — the seq_cst allowlist "
            "must stay documented there"))
        return violations
    for field, _op in sorted(allowlist):
        if field not in section:
            violations.append(Violation(
                "memory-order", str(DESIGN), 1,
                f"allowlisted atomic field '{field}' is not mentioned in "
                f"DESIGN.md §11 — document the protocol or drop the "
                f"allowlist entry"))
    return violations


# --------------------------------------------------------------------------
# Check 2 implementation.

FUNC_KINDS = ("FUNCTION_DECL", "CXX_METHOD", "FUNCTION_TEMPLATE",
              "CONSTRUCTOR", "DESTRUCTOR")


def _is_std(cursor):
    return in_namespace(cursor, "std") or in_namespace(cursor, "__gnu_cxx")


def check_alloc_free(cindex, index, kernel_specs):
    violations = []
    for path, extra_args in kernel_specs:
        path = pathlib.Path(path)
        args = ["-x", "c++", "-std=c++20", f"-I{SRC}"] + list(extra_args)
        if not path.exists():
            violations.append(Violation(
                "alloc-free", str(path), 1,
                "kernel file listed in sbf_analyze.py does not exist — "
                "update KERNEL_SPECS"))
            continue
        tu, fatal, _errors = parse_tu(cindex, index, str(path), args)
        if fatal:
            violations.append(Violation(
                "alloc-free", str(path), 1,
                f"failed to parse: {fatal[0].spelling}"))
            continue
        real = os.path.realpath(str(path))
        # Function definitions in this file, plus a call graph over every
        # function definition the TU pulled in from repo headers.
        defs = {}     # usr -> cursor
        entries = []  # usrs of functions defined in the kernel file itself
        for c in tu.cursor.walk_preorder():
            if c.kind.name not in FUNC_KINDS or not c.is_definition():
                continue
            loc = c.location
            if loc.file is None:
                continue
            where = os.path.realpath(loc.file.name)
            if not where.startswith(str(SRC) + os.sep) and where != real:
                continue
            usr = c.get_usr()
            defs[usr] = c
            if where == real:
                entries.append(usr)

        graph = {}    # usr -> set of callee usrs (repo-defined only)
        direct = {}   # usr -> [(line, what)]
        for usr, c in defs.items():
            callees = set()
            allocs = []
            for d in c.walk_preorder():
                kind = d.kind.name
                if kind == "CXX_NEW_EXPR":
                    allocs.append((d.location.line, "operator new"))
                elif kind == "CALL_EXPR":
                    r = d.referenced
                    if r is None:
                        continue
                    name = r.spelling
                    if name in BANNED_ALLOC_FUNCS:
                        allocs.append((d.location.line, f"{name}()"))
                    elif name in BANNED_ALLOC_MEMBERS and _is_std(r):
                        allocs.append(
                            (d.location.line, f"std member .{name}()"))
                    else:
                        callee_usr = r.get_usr()
                        if callee_usr in defs or r.is_definition():
                            callees.add(callee_usr)
            # Dependent (template) bodies: calls may not resolve, so scan
            # tokens for the banned names too. Over-approximate by design.
            if c.kind.name == "FUNCTION_TEMPLATE":
                for t in c.get_tokens():
                    if (t.kind == cindex.TokenKind.IDENTIFIER
                            and t.spelling in
                            (BANNED_ALLOC_FUNCS | BANNED_ALLOC_MEMBERS)):
                        allocs.append((t.location.line,
                                       f"{t.spelling} (token scan of "
                                       f"dependent body)"))
                    elif (t.kind == cindex.TokenKind.KEYWORD
                          and t.spelling == "new"):
                        allocs.append((t.location.line,
                                       "operator new (token scan of "
                                       "dependent body)"))
            graph[usr] = callees
            direct[usr] = allocs

        # BFS from the kernel file's own functions.
        seen_usrs = set(entries)
        frontier = list(entries)
        via = {u: None for u in entries}
        while frontier:
            u = frontier.pop()
            for v in graph.get(u, ()):
                if v in defs and v not in seen_usrs:
                    seen_usrs.add(v)
                    via[v] = u
                    frontier.append(v)

        reported = set()
        for usr in seen_usrs:
            for line, what in direct.get(usr, ()):
                key = (defs[usr].location.file.name, line, what)
                if key in reported:
                    continue
                reported.add(key)
                chain = []
                u = usr
                while u is not None:
                    chain.append(defs[u].spelling or "<anon>")
                    u = via.get(u)
                violations.append(Violation(
                    "alloc-free", defs[usr].location.file.name, line,
                    f"{what} reachable from kernel entry point "
                    f"{' <- '.join(chain)} — kernel pipelines must not "
                    f"allocate (DESIGN.md §11)"))
    return violations


# --------------------------------------------------------------------------
# Check 3 implementation.

STATUS_RETURN = re.compile(r"^(?:\w+::)*Status(?:Or<.*>)?$")


def _tokens_until(cursor, cindex, stop):
    out = []
    for t in cursor.get_tokens():
        if t.kind == cindex.TokenKind.COMMENT:
            continue
        if t.spelling == stop:
            break
        out.append(t.spelling)
    return out


CLASS_KINDS = ("CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE")
CLASS_NAME = re.compile(r"^(?:\w+::)*(\w+)")


def covered_class_names(cindex, tus, within_prefixes):
    """Names of repo classes declared with a class-level [[nodiscard]].
    Collected from class *definitions* (which have real token extents —
    template instantiations do not) and matched by name, which is exact
    enough within one repository."""
    covered = set()
    for tu in tus:
        for c in tu.cursor.walk_preorder():
            if c.kind.name not in CLASS_KINDS or not c.is_definition():
                continue
            loc = c.location
            if loc.file is None:
                continue
            path = os.path.realpath(loc.file.name)
            if not any(path.startswith(p) for p in within_prefixes):
                continue
            if c.spelling and "nodiscard" in _tokens_until(c, cindex, "{"):
                covered.add(c.spelling)
    return covered


def check_nodiscard(cindex, tus, within_prefixes):
    violations = []
    seen = set()
    covered_classes = covered_class_names(cindex, tus, within_prefixes)

    for tu in tus:
        for c in tu.cursor.walk_preorder():
            if c.kind.name not in ("FUNCTION_DECL", "CXX_METHOD"):
                continue
            loc = c.location
            if loc.file is None:
                continue
            path = os.path.realpath(loc.file.name)
            if not any(path.startswith(p) for p in within_prefixes):
                continue
            usr = c.get_usr()
            if usr in seen:
                continue
            canonical = c.result_type.get_canonical().spelling
            if not STATUS_RETURN.match(canonical):
                continue
            seen.add(usr)
            if c.kind.name == "CXX_METHOD":
                access = c.access_specifier
                if access is not None and access.name != "PUBLIC":
                    continue
            if in_namespace(c, "internal") or in_namespace(c, "detail"):
                continue
            if "nodiscard" in _tokens_until(c, cindex, "("):
                continue
            m = CLASS_NAME.match(canonical)
            if m and m.group(1) in covered_classes:
                continue
            violations.append(Violation(
                "nodiscard", path, loc.line,
                f"public function '{c.spelling}' returns {canonical} "
                f"without [[nodiscard]] coverage (neither on the function "
                f"nor on the returned class) — a dropped Status is a "
                f"swallowed failure"))
    return violations


# --------------------------------------------------------------------------
# Check 4 implementation.

def check_wire_ownership(cindex, tus, within_prefixes, exempt_prefixes):
    violations = []
    seen = set()
    for tu in tus:
        for c in tu.cursor.walk_preorder():
            loc = c.location
            if loc.file is None:
                continue
            path = os.path.realpath(loc.file.name)
            if not any(path.startswith(p) for p in within_prefixes):
                continue
            if any(path.startswith(p) for p in exempt_prefixes):
                continue
            kind = c.kind.name
            if kind == "VAR_DECL" and FSTREAM_TYPE.search(c.type.spelling):
                key = (path, loc.line, "fstream")
                if key not in seen:
                    seen.add(key)
                    violations.append(Violation(
                        "wire-ownership", path, loc.line,
                        f"file stream ({c.type.spelling}) outside src/io/ — "
                        f"byte I/O goes through the wire/io layer"))
                continue
            if kind != "CALL_EXPR":
                continue
            ref = c.referenced
            if ref is None:
                continue
            name = ref.spelling
            if name in BANNED_IO_FUNCS and is_free_function(ref):
                toks = file_tokens(c, cindex)
                if "stdout" in toks or "stderr" in toks:
                    continue  # console output is not wire I/O (lint rule 1)
                key = (path, loc.line, name)
                if key in seen:
                    continue
                seen.add(key)
                violations.append(Violation(
                    "wire-ownership", path, loc.line,
                    f"call resolves to file-I/O primitive '{name}' outside "
                    f"src/io/ — the io layer owns every byte that reaches "
                    f"disk"))
            elif name in BANNED_IO_HELPERS and in_namespace(ref, "io"):
                key = (path, loc.line, name)
                if key in seen:
                    continue
                seen.add(key)
                violations.append(Violation(
                    "wire-ownership", path, loc.line,
                    f"io::{name} called outside src/io/ — wrap the access "
                    f"in an io-layer API instead"))
    return violations


# --------------------------------------------------------------------------
# Repo analysis driver.

def analyze_repo(cindex, index, db_path):
    if not os.path.exists(db_path):
        print(f"sbf_analyze: no compile database at {db_path} — configure "
              f"with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on by "
              f"default)", file=sys.stderr)
        return 2
    db = load_compile_db(db_path)
    if not db:
        print(f"sbf_analyze: {db_path} holds no src/ entries",
              file=sys.stderr)
        return 2

    src_prefix = [str(SRC) + os.sep]
    io_prefix = [str(SRC / "io") + os.sep]

    tus = []
    infra = []
    atomic_sites = []
    for source, args in sorted(db.items()):
        tu, fatal, errors = parse_tu(cindex, index, source, args)
        if fatal or errors:
            diag = (fatal + errors)[0]
            infra.append(f"{source}: parse error: {diag.spelling} "
                         f"({diag.location})")
            continue
        tus.append(tu)
        atomic_sites.extend(collect_atomic_sites(cindex, tu, src_prefix))

    if infra:
        for line in infra:
            print(f"sbf_analyze: {line}", file=sys.stderr)
        print(f"sbf_analyze: {len(infra)} translation unit(s) failed to "
              f"parse — refusing to report a partial analysis as clean",
              file=sys.stderr)
        return 2

    violations = []
    violations += check_memory_order(atomic_sites, SEQ_CST_ALLOWLIST)
    violations += check_alloc_free(cindex, index, KERNEL_SPECS)
    violations += check_nodiscard(cindex, tus, src_prefix)
    violations += check_wire_ownership(cindex, tus, src_prefix, io_prefix)

    for v in violations:
        print(v)
    if violations:
        print(f"sbf_analyze: {len(violations)} violation(s)")
        return 1
    print(f"sbf_analyze: clean ({len(tus)} TUs, {len(atomic_sites)} atomic "
          f"sites, 4 checks)")
    return 0


# --------------------------------------------------------------------------
# Self-test: every check must catch its seeded fixture and stay quiet on
# the clean one. This is what ctest runs (tests/CMakeLists.txt) and what CI
# runs before the real analysis — a check that cannot catch its own planted
# bug is not a gate.

def self_test(cindex, index):
    failures = []
    args = ["-x", "c++", "-std=c++20", f"-I{SRC}"]

    def parse_fixture(name):
        path = FIXTURES / name
        tu, fatal, errors = parse_tu(cindex, index, str(path), args)
        if fatal or errors:
            failures.append(f"{name}: fixture failed to parse: "
                            f"{(fatal + errors)[0].spelling}")
            return None
        return tu

    fixture_prefix = [str(FIXTURES) + os.sep, str(FIXTURES)]

    # memory-order: the seeded fixture must trip all four violation shapes.
    tu = parse_fixture("memory_order_violation.cc")
    if tu is not None:
        sites = collect_atomic_sites(cindex, tu, fixture_prefix)
        found = check_memory_order(sites, SEQ_CST_ALLOWLIST,
                                   check_design_tie=False)
        text = "\n".join(str(v) for v in found)
        for needle, label in [
                ("implicit memory order", "implicit-order"),
                ("failure order must be explicit", "cas-failure-order"),
                ("not on the documented allowlist", "rogue-seq-cst"),
                ("unpaired release", "unpaired-release")]:
            if needle not in text:
                failures.append(f"memory-order: seeded {label} violation "
                                f"not caught; got:\n{text or '(nothing)'}")

    # memory-order: the clean fixture must stay clean.
    tu = parse_fixture("memory_order_clean.cc")
    if tu is not None:
        sites = collect_atomic_sites(cindex, tu, fixture_prefix)
        if not sites:
            failures.append("memory-order: clean fixture produced no atomic "
                            "sites — the collector went blind")
        found = check_memory_order(sites, SEQ_CST_ALLOWLIST,
                                   check_design_tie=False)
        if found:
            failures.append(f"memory-order: clean fixture flagged: "
                            f"{[str(v) for v in found]}")

    # alloc-free: the seeded kernel fixture must trip via the call graph.
    found = check_alloc_free(
        cindex, index, [(FIXTURES / "alloc_violation.h", [])])
    text = "\n".join(str(v) for v in found)
    if "push_back" not in text:
        failures.append(f"alloc-free: seeded std member allocation not "
                        f"caught; got:\n{text or '(nothing)'}")
    if "operator new" not in text:
        failures.append(f"alloc-free: seeded operator new not caught; "
                        f"got:\n{text or '(nothing)'}")
    if "KernelEntry" not in text:
        failures.append("alloc-free: violation chain does not name the "
                        "kernel entry point")

    # alloc-free: the real kernels must be clean (this is also the live
    # gate, but asserting it here catches a check that flags everything).
    found = check_alloc_free(cindex, index, KERNEL_SPECS)
    if found:
        failures.append(f"alloc-free: real kernels flagged: "
                        f"{[str(v) for v in found]}")

    # nodiscard: exactly the uncovered function must be flagged.
    tu = parse_fixture("nodiscard_violation.h")
    if tu is not None:
        found = check_nodiscard(cindex, [tu], fixture_prefix)
        text = "\n".join(str(v) for v in found)
        if "Uncovered" not in text:
            failures.append(f"nodiscard: seeded uncovered Status return not "
                            f"caught; got:\n{text or '(nothing)'}")
        if "CoveredByFunction" in text or "CoveredByClass" in text:
            failures.append(f"nodiscard: covered functions were flagged: "
                            f"{text}")

    # wire-ownership: byte I/O in a fixture "outside src/io" must be
    # flagged, and the stdout exemption must hold.
    tu = parse_fixture("wire_violation.cc")
    if tu is not None:
        found = check_wire_ownership(cindex, [tu], fixture_prefix, [])
        text = "\n".join(str(v) for v in found)
        for needle in ("fopen", "fwrite"):
            if needle not in text:
                failures.append(f"wire-ownership: seeded {needle} not "
                                f"caught; got:\n{text or '(nothing)'}")
        if "stdout" in text:
            failures.append(f"wire-ownership: stdout exemption lost: {text}")

    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}")
        return 1
    print("sbf_analyze self-test: all 4 checks catch their seeded fixtures")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--compile-commands",
                    default=str(REPO / "build" / "compile_commands.json"))
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation fixtures instead of the "
                         "repo analysis")
    ap.add_argument("--require-libclang", action="store_true",
                    help="treat missing libclang as an error (CI), not a "
                         "skip")
    opts = ap.parse_args()

    cindex, index = load_cindex(opts.require_libclang)
    if opts.self_test:
        return self_test(cindex, index)
    return analyze_repo(cindex, index, opts.compile_commands)


if __name__ == "__main__":
    sys.exit(main())
