#!/usr/bin/env python3
"""Thread-safety annotation gate (DESIGN.md §11).

Runs clang's -Wthread-safety analysis (syntax-only, no build tree needed)
over the annotated concurrent and durable translation units, and then
verifies the analysis still has teeth by checking that the seeded fixture
(tests/analyzer_fixtures/thread_safety_violation.cc) FAILS with a
thread-safety diagnostic. Both directions matter: a clean pass with a dead
analyzer proves nothing.

Only clang implements -Wthread-safety. Without a clang++ on PATH (or named
via SBF_CLANGXX) the gate skips loudly with exit 77, which ctest maps to
SKIP via SKIP_RETURN_CODE; CI installs clang and runs it for real.

Exit status: 0 pass, 1 contract broken, 2 infrastructure error, 77 skip.
"""

import os
import pathlib
import shutil
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SKIP_EXIT = 77

# The annotated subsystems (ISSUE/DESIGN.md §11). Compiling these with
# -Werror=thread-safety is the whole contract: guarded members touched
# without their mutex, lock-order annotations violated, scoped locks leaked.
ANNOTATED_TUS = [
    "src/core/concurrent_sbf.cc",
    "src/core/delta_buffer.cc",
    "src/io/durable_store.cc",
    "src/util/metrics.cc",
]
FIXTURE = "tests/analyzer_fixtures/thread_safety_violation.cc"

CLANG_FLAGS = [
    "-fsyntax-only", "-x", "c++", "-std=c++20",
    "-I", str(REPO / "src"),
    "-Wall", "-Wextra",
    "-Wthread-safety", "-Werror=thread-safety",
]


def find_clang():
    explicit = os.environ.get("SBF_CLANGXX")
    if explicit:
        path = shutil.which(explicit)
        if path is None:
            print(f"check_thread_safety: SBF_CLANGXX={explicit} not found "
                  f"on PATH", file=sys.stderr)
            sys.exit(2)
        return path
    for name in ["clang++"] + [f"clang++-{v}" for v in range(21, 13, -1)]:
        path = shutil.which(name)
        if path is not None:
            return path
    return None


def run(clang, source):
    return subprocess.run([clang] + CLANG_FLAGS + [str(REPO / source)],
                          capture_output=True, text=True)


def main():
    clang = find_clang()
    if clang is None:
        print("check_thread_safety: no clang++ on PATH (set SBF_CLANGXX to "
              "point at one) — SKIPPING the -Wthread-safety gate. CI runs "
              "it for real.")
        return SKIP_EXIT

    failures = 0

    # Direction 1: the annotated subsystems must be thread-safety clean.
    for tu in ANNOTATED_TUS:
        result = run(clang, tu)
        if result.returncode != 0:
            failures += 1
            print(f"check_thread_safety: {tu} FAILED -Wthread-safety:")
            sys.stdout.write(result.stderr)
        else:
            print(f"check_thread_safety: {tu} clean")

    # Direction 2: the analysis must still catch the seeded violation.
    result = run(clang, FIXTURE)
    if result.returncode == 0:
        failures += 1
        print(f"check_thread_safety: {FIXTURE} compiled CLEAN — the seeded "
              f"guarded-by violation was not diagnosed; the analysis or "
              f"the annotation macros went dead")
    elif "thread-safety" not in result.stderr and \
            "thread safety" not in result.stderr:
        failures += 1
        print(f"check_thread_safety: {FIXTURE} failed for the wrong "
              f"reason (no thread-safety diagnostic):")
        sys.stdout.write(result.stderr)
    else:
        print(f"check_thread_safety: {FIXTURE} correctly rejected "
              f"(seeded violation diagnosed)")

    if failures:
        print(f"check_thread_safety: {failures} failure(s) [{clang}]")
        return 1
    print(f"check_thread_safety: all clean [{clang}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
