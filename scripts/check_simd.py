#!/usr/bin/env python3
"""Perf-smoke gate on the SIMD blocked-kernel artifact.

Reads BENCH_simd_blocked.json (schema: bench/common/bench_json.h, written
by bench/bench_simd_blocked) and fails if the hot-regime AVX2 estimate
speedup over the scalar batch pipeline falls below the threshold on every
geometry/policy cell. Gating on the best cell rather than all cells keeps
the gate robust on shared runners: the fixed64 cells sit at 4-5x with
headroom, while noisy neighbours can shave any single ratio.

The gate SKIPS — exit 0 with a message — when the artifact has no avx2
rows, which is what bench_simd_blocked emits on a host without AVX2 (the
ISA sweep only includes supported ISAs). A gate that fails on every
SSE2-only runner teaches people to ignore it.

Usage: python3 scripts/check_simd.py [path/to/BENCH_simd_blocked.json]
Exit status: 0 pass or skip, 1 gate failure or missing/invalid artifact.
"""

import json
import sys

THRESHOLD = 3.0
REGIME = "hot"
ISA = "avx2"


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_simd_blocked.json"
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_simd: cannot read {path}: {e}")
        return 1

    has_hot = False
    cells = {}  # (shape, policy) -> speedup
    for row in rows:
        params = row.get("params", {})
        if params.get("regime") != REGIME or row.get("name") != "estimate":
            continue
        has_hot = True
        if params.get("isa") == ISA:
            key = (params.get("shape"), params.get("policy"))
            cells[key] = params.get("speedup_vs_scalar_pipeline")

    if not cells:
        if has_hot:
            print(f"check_simd: SKIP — no {ISA} rows in {path}; "
                  f"host does not support {ISA}")
            return 0
        print(f"check_simd: no {REGIME}-regime estimate rows in {path}")
        return 1

    (shape, policy), speedup = max(cells.items(), key=lambda kv: kv[1])
    verdict = "PASS" if speedup >= THRESHOLD else "FAIL"
    print(f"check_simd: {verdict} — best {REGIME}-regime {ISA} estimate "
          f"speedup vs scalar pipeline is {speedup:.2f}x on {shape}/{policy} "
          f"(threshold {THRESHOLD:.1f}x)")
    for (s, p), v in sorted(cells.items()):
        print(f"check_simd:   {s}/{p}: {v:.2f}x")
    return 0 if speedup >= THRESHOLD else 1


if __name__ == "__main__":
    sys.exit(main())
