#!/usr/bin/env python3
"""Perf-smoke gate on the SIMD blocked-kernel artifact.

Reads BENCH_simd_blocked.json (schema: bench/common/bench_json.h, written
by bench/bench_simd_blocked) and fails if the hot-regime AVX2 estimate
speedup over the scalar batch pipeline falls below the threshold on every
geometry/policy cell. Gating on the best cell rather than all cells keeps
the gate robust on shared runners: the fixed64 cells sit at 4-5x with
headroom, while noisy neighbours can shave any single ratio.

The gate SKIPS — exit 0 with a message — when the artifact has no avx2
rows, which is what bench_simd_blocked emits on a host without AVX2 (the
ISA sweep only includes supported ISAs). A gate that fails on every
SSE2-only runner teaches people to ignore it.

Usage: python3 scripts/check_simd.py [path/to/BENCH_simd_blocked.json]
Exit status: 0 pass or skip, 1 gate failure or missing/invalid artifact.
"""

import sys

import gate_common

GATE = "check_simd"
THRESHOLD = 3.0
REGIME = "hot"
ISA = "avx2"


def main():
    path = gate_common.artifact_path("BENCH_simd_blocked.json")
    rows = gate_common.load_rows(GATE, path)
    if rows is None:
        return 1

    has_hot = False
    cells = {}  # (shape, policy) -> speedup
    for row in rows:
        params = row.get("params", {})
        if params.get("regime") != REGIME or row.get("name") != "estimate":
            continue
        has_hot = True
        if params.get("isa") == ISA:
            key = (params.get("shape"), params.get("policy"))
            cells[key] = params.get("speedup_vs_scalar_pipeline")

    if not cells:
        if has_hot:
            return gate_common.skip(
                GATE, f"no {ISA} rows in {path}; host does not support "
                      f"{ISA}")
        return gate_common.fail(
            GATE, f"no {REGIME}-regime estimate rows in {path}")

    (shape, policy), speedup = max(cells.items(), key=lambda kv: kv[1])
    code = gate_common.verdict(
        GATE, speedup, THRESHOLD,
        f"best {REGIME}-regime {ISA} estimate speedup vs scalar pipeline "
        f"is {speedup:.2f}x on {shape}/{policy}")
    for (s, p), v in sorted(cells.items()):
        print(f"{GATE}:   {s}/{p}: {v:.2f}x")
    return code


if __name__ == "__main__":
    sys.exit(main())
