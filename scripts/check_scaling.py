#!/usr/bin/env python3
"""Perf-smoke gate on the concurrent scaling artifact.

Reads BENCH_concurrent_scaling.json (schema: bench/common/bench_json.h)
and fails if the 8-thread insert speedup on the lock-free delta path
(fixed64 backing, Minimum Selection, delta buffers on, the highest shard
count swept) falls below the threshold. The gate SKIPS — exit 0 with a
message — when the host has fewer than 8 physical contexts: speedup over
one thread is unmeasurable on an undersubscribed machine, and a gate that
fails on every small runner teaches people to ignore it.

Usage: python3 scripts/check_scaling.py [path/to/BENCH_concurrent_scaling.json]
Exit status: 0 pass or skip, 1 gate failure or missing/invalid artifact.
"""

import json
import os
import sys

THRESHOLD = 3.0
THREADS = 8
BACKING = "fixed64"


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_concurrent_scaling.json"
    cores = os.cpu_count() or 1
    if cores < THREADS:
        print(f"check_scaling: SKIP — host has {cores} cpu(s), "
              f"need >= {THREADS} to measure {THREADS}-thread speedup")
        return 0

    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_scaling: cannot read {path}: {e}")
        return 1

    cells = {}  # shards -> speedup
    for row in rows:
        params = row.get("params", {})
        if (row.get("name") == "insert_batch"
                and params.get("backing") == BACKING
                and params.get("delta") == "on"
                and params.get("threads") == THREADS):
            cells[params.get("shards")] = params.get("speedup_vs_1t")

    if not cells:
        print(f"check_scaling: no {THREADS}-thread {BACKING}+delta "
              f"insert_batch rows in {path}")
        return 1

    shards = max(cells)
    speedup = cells[shards]
    verdict = "PASS" if speedup >= THRESHOLD else "FAIL"
    print(f"check_scaling: {verdict} — {THREADS}-thread insert speedup on "
          f"{BACKING}+MS (delta on, {shards} shards) is {speedup:.2f}x "
          f"(threshold {THRESHOLD:.1f}x)")
    return 0 if speedup >= THRESHOLD else 1


if __name__ == "__main__":
    sys.exit(main())
