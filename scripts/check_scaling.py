#!/usr/bin/env python3
"""Perf-smoke gate on the concurrent scaling artifact.

Reads BENCH_concurrent_scaling.json (schema: bench/common/bench_json.h)
and fails if the 8-thread insert speedup on the lock-free delta path
(fixed64 backing, Minimum Selection, delta buffers on, the highest shard
count swept) falls below the threshold. The gate SKIPS — exit 0 with a
message — when the host has fewer than 8 physical contexts: speedup over
one thread is unmeasurable on an undersubscribed machine, and a gate that
fails on every small runner teaches people to ignore it.

Usage: python3 scripts/check_scaling.py [path/to/BENCH_concurrent_scaling.json]
Exit status: 0 pass or skip, 1 gate failure or missing/invalid artifact.
"""

import os
import sys

import gate_common

GATE = "check_scaling"
THRESHOLD = 3.0
THREADS = 8
BACKING = "fixed64"


def main():
    path = gate_common.artifact_path("BENCH_concurrent_scaling.json")
    cores = os.cpu_count() or 1
    if cores < THREADS:
        return gate_common.skip(
            GATE, f"host has {cores} cpu(s), need >= {THREADS} to measure "
                  f"{THREADS}-thread speedup")

    rows = gate_common.load_rows(GATE, path)
    if rows is None:
        return 1

    cells = {}  # shards -> speedup
    for row in rows:
        params = row.get("params", {})
        if (row.get("name") == "insert_batch"
                and params.get("backing") == BACKING
                and params.get("delta") == "on"
                and params.get("threads") == THREADS):
            cells[params.get("shards")] = params.get("speedup_vs_1t")

    if not cells:
        return gate_common.fail(
            GATE, f"no {THREADS}-thread {BACKING}+delta insert_batch rows "
                  f"in {path}")

    shards = max(cells)
    speedup = cells[shards]
    return gate_common.verdict(
        GATE, speedup, THRESHOLD,
        f"{THREADS}-thread insert speedup on {BACKING}+MS (delta on, "
        f"{shards} shards) is {speedup:.2f}x")


if __name__ == "__main__":
    sys.exit(main())
