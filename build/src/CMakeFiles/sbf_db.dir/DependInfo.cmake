
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/aggregate_index.cc" "src/CMakeFiles/sbf_db.dir/db/aggregate_index.cc.o" "gcc" "src/CMakeFiles/sbf_db.dir/db/aggregate_index.cc.o.d"
  "/root/repo/src/db/bifocal.cc" "src/CMakeFiles/sbf_db.dir/db/bifocal.cc.o" "gcc" "src/CMakeFiles/sbf_db.dir/db/bifocal.cc.o.d"
  "/root/repo/src/db/bloomjoin.cc" "src/CMakeFiles/sbf_db.dir/db/bloomjoin.cc.o" "gcc" "src/CMakeFiles/sbf_db.dir/db/bloomjoin.cc.o.d"
  "/root/repo/src/db/chaining_hash_table.cc" "src/CMakeFiles/sbf_db.dir/db/chaining_hash_table.cc.o" "gcc" "src/CMakeFiles/sbf_db.dir/db/chaining_hash_table.cc.o.d"
  "/root/repo/src/db/iceberg.cc" "src/CMakeFiles/sbf_db.dir/db/iceberg.cc.o" "gcc" "src/CMakeFiles/sbf_db.dir/db/iceberg.cc.o.d"
  "/root/repo/src/db/range_tree.cc" "src/CMakeFiles/sbf_db.dir/db/range_tree.cc.o" "gcc" "src/CMakeFiles/sbf_db.dir/db/range_tree.cc.o.d"
  "/root/repo/src/db/relation.cc" "src/CMakeFiles/sbf_db.dir/db/relation.cc.o" "gcc" "src/CMakeFiles/sbf_db.dir/db/relation.cc.o.d"
  "/root/repo/src/db/top_k.cc" "src/CMakeFiles/sbf_db.dir/db/top_k.cc.o" "gcc" "src/CMakeFiles/sbf_db.dir/db/top_k.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_sai.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
