file(REMOVE_RECURSE
  "libsbf_db.a"
)
