# Empty compiler generated dependencies file for sbf_db.
# This may be replaced when dependencies are built.
