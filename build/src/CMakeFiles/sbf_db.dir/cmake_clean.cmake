file(REMOVE_RECURSE
  "CMakeFiles/sbf_db.dir/db/aggregate_index.cc.o"
  "CMakeFiles/sbf_db.dir/db/aggregate_index.cc.o.d"
  "CMakeFiles/sbf_db.dir/db/bifocal.cc.o"
  "CMakeFiles/sbf_db.dir/db/bifocal.cc.o.d"
  "CMakeFiles/sbf_db.dir/db/bloomjoin.cc.o"
  "CMakeFiles/sbf_db.dir/db/bloomjoin.cc.o.d"
  "CMakeFiles/sbf_db.dir/db/chaining_hash_table.cc.o"
  "CMakeFiles/sbf_db.dir/db/chaining_hash_table.cc.o.d"
  "CMakeFiles/sbf_db.dir/db/iceberg.cc.o"
  "CMakeFiles/sbf_db.dir/db/iceberg.cc.o.d"
  "CMakeFiles/sbf_db.dir/db/range_tree.cc.o"
  "CMakeFiles/sbf_db.dir/db/range_tree.cc.o.d"
  "CMakeFiles/sbf_db.dir/db/relation.cc.o"
  "CMakeFiles/sbf_db.dir/db/relation.cc.o.d"
  "CMakeFiles/sbf_db.dir/db/top_k.cc.o"
  "CMakeFiles/sbf_db.dir/db/top_k.cc.o.d"
  "libsbf_db.a"
  "libsbf_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
