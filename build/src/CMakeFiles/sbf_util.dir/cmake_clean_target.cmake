file(REMOVE_RECURSE
  "libsbf_util.a"
)
