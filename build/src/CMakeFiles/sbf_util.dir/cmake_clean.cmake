file(REMOVE_RECURSE
  "CMakeFiles/sbf_util.dir/util/metrics.cc.o"
  "CMakeFiles/sbf_util.dir/util/metrics.cc.o.d"
  "CMakeFiles/sbf_util.dir/util/random.cc.o"
  "CMakeFiles/sbf_util.dir/util/random.cc.o.d"
  "CMakeFiles/sbf_util.dir/util/status.cc.o"
  "CMakeFiles/sbf_util.dir/util/status.cc.o.d"
  "CMakeFiles/sbf_util.dir/util/table_printer.cc.o"
  "CMakeFiles/sbf_util.dir/util/table_printer.cc.o.d"
  "CMakeFiles/sbf_util.dir/util/timer.cc.o"
  "CMakeFiles/sbf_util.dir/util/timer.cc.o.d"
  "libsbf_util.a"
  "libsbf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
