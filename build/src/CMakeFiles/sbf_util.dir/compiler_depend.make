# Empty compiler generated dependencies file for sbf_util.
# This may be replaced when dependencies are built.
