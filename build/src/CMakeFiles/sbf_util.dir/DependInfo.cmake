
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/metrics.cc" "src/CMakeFiles/sbf_util.dir/util/metrics.cc.o" "gcc" "src/CMakeFiles/sbf_util.dir/util/metrics.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/sbf_util.dir/util/random.cc.o" "gcc" "src/CMakeFiles/sbf_util.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/sbf_util.dir/util/status.cc.o" "gcc" "src/CMakeFiles/sbf_util.dir/util/status.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/sbf_util.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/sbf_util.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/sbf_util.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/sbf_util.dir/util/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
