# Empty dependencies file for sbf_hashing.
# This may be replaced when dependencies are built.
