file(REMOVE_RECURSE
  "CMakeFiles/sbf_hashing.dir/hashing/hash.cc.o"
  "CMakeFiles/sbf_hashing.dir/hashing/hash.cc.o.d"
  "CMakeFiles/sbf_hashing.dir/hashing/hash_family.cc.o"
  "CMakeFiles/sbf_hashing.dir/hashing/hash_family.cc.o.d"
  "libsbf_hashing.a"
  "libsbf_hashing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_hashing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
