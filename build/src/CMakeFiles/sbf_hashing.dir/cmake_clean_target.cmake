file(REMOVE_RECURSE
  "libsbf_hashing.a"
)
