
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hashing/hash.cc" "src/CMakeFiles/sbf_hashing.dir/hashing/hash.cc.o" "gcc" "src/CMakeFiles/sbf_hashing.dir/hashing/hash.cc.o.d"
  "/root/repo/src/hashing/hash_family.cc" "src/CMakeFiles/sbf_hashing.dir/hashing/hash_family.cc.o" "gcc" "src/CMakeFiles/sbf_hashing.dir/hashing/hash_family.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
