# Empty compiler generated dependencies file for sbf_bitstream.
# This may be replaced when dependencies are built.
