
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/bit_vector.cc" "src/CMakeFiles/sbf_bitstream.dir/bitstream/bit_vector.cc.o" "gcc" "src/CMakeFiles/sbf_bitstream.dir/bitstream/bit_vector.cc.o.d"
  "/root/repo/src/bitstream/elias.cc" "src/CMakeFiles/sbf_bitstream.dir/bitstream/elias.cc.o" "gcc" "src/CMakeFiles/sbf_bitstream.dir/bitstream/elias.cc.o.d"
  "/root/repo/src/bitstream/rank_select.cc" "src/CMakeFiles/sbf_bitstream.dir/bitstream/rank_select.cc.o" "gcc" "src/CMakeFiles/sbf_bitstream.dir/bitstream/rank_select.cc.o.d"
  "/root/repo/src/bitstream/steps_code.cc" "src/CMakeFiles/sbf_bitstream.dir/bitstream/steps_code.cc.o" "gcc" "src/CMakeFiles/sbf_bitstream.dir/bitstream/steps_code.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
