file(REMOVE_RECURSE
  "libsbf_bitstream.a"
)
