file(REMOVE_RECURSE
  "CMakeFiles/sbf_bitstream.dir/bitstream/bit_vector.cc.o"
  "CMakeFiles/sbf_bitstream.dir/bitstream/bit_vector.cc.o.d"
  "CMakeFiles/sbf_bitstream.dir/bitstream/elias.cc.o"
  "CMakeFiles/sbf_bitstream.dir/bitstream/elias.cc.o.d"
  "CMakeFiles/sbf_bitstream.dir/bitstream/rank_select.cc.o"
  "CMakeFiles/sbf_bitstream.dir/bitstream/rank_select.cc.o.d"
  "CMakeFiles/sbf_bitstream.dir/bitstream/steps_code.cc.o"
  "CMakeFiles/sbf_bitstream.dir/bitstream/steps_code.cc.o.d"
  "libsbf_bitstream.a"
  "libsbf_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
