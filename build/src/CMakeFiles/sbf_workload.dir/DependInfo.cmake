
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/forest_cover.cc" "src/CMakeFiles/sbf_workload.dir/workload/forest_cover.cc.o" "gcc" "src/CMakeFiles/sbf_workload.dir/workload/forest_cover.cc.o.d"
  "/root/repo/src/workload/multiset_stream.cc" "src/CMakeFiles/sbf_workload.dir/workload/multiset_stream.cc.o" "gcc" "src/CMakeFiles/sbf_workload.dir/workload/multiset_stream.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/sbf_workload.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/sbf_workload.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
