file(REMOVE_RECURSE
  "CMakeFiles/sbf_workload.dir/workload/forest_cover.cc.o"
  "CMakeFiles/sbf_workload.dir/workload/forest_cover.cc.o.d"
  "CMakeFiles/sbf_workload.dir/workload/multiset_stream.cc.o"
  "CMakeFiles/sbf_workload.dir/workload/multiset_stream.cc.o.d"
  "CMakeFiles/sbf_workload.dir/workload/zipf.cc.o"
  "CMakeFiles/sbf_workload.dir/workload/zipf.cc.o.d"
  "libsbf_workload.a"
  "libsbf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
