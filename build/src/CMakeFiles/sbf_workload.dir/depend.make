# Empty dependencies file for sbf_workload.
# This may be replaced when dependencies are built.
