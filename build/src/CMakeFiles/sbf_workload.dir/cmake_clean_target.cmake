file(REMOVE_RECURSE
  "libsbf_workload.a"
)
