file(REMOVE_RECURSE
  "CMakeFiles/sbf_core.dir/core/analysis.cc.o"
  "CMakeFiles/sbf_core.dir/core/analysis.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/blocked_sbf.cc.o"
  "CMakeFiles/sbf_core.dir/core/blocked_sbf.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/bloom_filter.cc.o"
  "CMakeFiles/sbf_core.dir/core/bloom_filter.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/counting_bloom_filter.cc.o"
  "CMakeFiles/sbf_core.dir/core/counting_bloom_filter.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/estimators.cc.o"
  "CMakeFiles/sbf_core.dir/core/estimators.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/recurring_minimum.cc.o"
  "CMakeFiles/sbf_core.dir/core/recurring_minimum.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/sbf_algebra.cc.o"
  "CMakeFiles/sbf_core.dir/core/sbf_algebra.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/sliding_window.cc.o"
  "CMakeFiles/sbf_core.dir/core/sliding_window.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/spectral_bloom_filter.cc.o"
  "CMakeFiles/sbf_core.dir/core/spectral_bloom_filter.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/trapping_rm.cc.o"
  "CMakeFiles/sbf_core.dir/core/trapping_rm.cc.o.d"
  "CMakeFiles/sbf_core.dir/core/tuning.cc.o"
  "CMakeFiles/sbf_core.dir/core/tuning.cc.o.d"
  "libsbf_core.a"
  "libsbf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
