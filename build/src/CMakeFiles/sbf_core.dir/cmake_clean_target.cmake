file(REMOVE_RECURSE
  "libsbf_core.a"
)
