# Empty compiler generated dependencies file for sbf_core.
# This may be replaced when dependencies are built.
