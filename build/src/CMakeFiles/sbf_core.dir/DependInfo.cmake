
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/CMakeFiles/sbf_core.dir/core/analysis.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/analysis.cc.o.d"
  "/root/repo/src/core/blocked_sbf.cc" "src/CMakeFiles/sbf_core.dir/core/blocked_sbf.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/blocked_sbf.cc.o.d"
  "/root/repo/src/core/bloom_filter.cc" "src/CMakeFiles/sbf_core.dir/core/bloom_filter.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/bloom_filter.cc.o.d"
  "/root/repo/src/core/counting_bloom_filter.cc" "src/CMakeFiles/sbf_core.dir/core/counting_bloom_filter.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/counting_bloom_filter.cc.o.d"
  "/root/repo/src/core/estimators.cc" "src/CMakeFiles/sbf_core.dir/core/estimators.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/estimators.cc.o.d"
  "/root/repo/src/core/recurring_minimum.cc" "src/CMakeFiles/sbf_core.dir/core/recurring_minimum.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/recurring_minimum.cc.o.d"
  "/root/repo/src/core/sbf_algebra.cc" "src/CMakeFiles/sbf_core.dir/core/sbf_algebra.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/sbf_algebra.cc.o.d"
  "/root/repo/src/core/sliding_window.cc" "src/CMakeFiles/sbf_core.dir/core/sliding_window.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/sliding_window.cc.o.d"
  "/root/repo/src/core/spectral_bloom_filter.cc" "src/CMakeFiles/sbf_core.dir/core/spectral_bloom_filter.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/spectral_bloom_filter.cc.o.d"
  "/root/repo/src/core/trapping_rm.cc" "src/CMakeFiles/sbf_core.dir/core/trapping_rm.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/trapping_rm.cc.o.d"
  "/root/repo/src/core/tuning.cc" "src/CMakeFiles/sbf_core.dir/core/tuning.cc.o" "gcc" "src/CMakeFiles/sbf_core.dir/core/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sbf_sai.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
