# Empty dependencies file for sbf_sai.
# This may be replaced when dependencies are built.
