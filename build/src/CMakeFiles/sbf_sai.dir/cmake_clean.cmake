file(REMOVE_RECURSE
  "CMakeFiles/sbf_sai.dir/sai/compact_counter_vector.cc.o"
  "CMakeFiles/sbf_sai.dir/sai/compact_counter_vector.cc.o.d"
  "CMakeFiles/sbf_sai.dir/sai/counter_vector.cc.o"
  "CMakeFiles/sbf_sai.dir/sai/counter_vector.cc.o.d"
  "CMakeFiles/sbf_sai.dir/sai/fixed_counter_vector.cc.o"
  "CMakeFiles/sbf_sai.dir/sai/fixed_counter_vector.cc.o.d"
  "CMakeFiles/sbf_sai.dir/sai/select_index.cc.o"
  "CMakeFiles/sbf_sai.dir/sai/select_index.cc.o.d"
  "CMakeFiles/sbf_sai.dir/sai/serial_scan_counter_vector.cc.o"
  "CMakeFiles/sbf_sai.dir/sai/serial_scan_counter_vector.cc.o.d"
  "CMakeFiles/sbf_sai.dir/sai/string_array_index.cc.o"
  "CMakeFiles/sbf_sai.dir/sai/string_array_index.cc.o.d"
  "libsbf_sai.a"
  "libsbf_sai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_sai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
