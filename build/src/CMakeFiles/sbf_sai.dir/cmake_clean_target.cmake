file(REMOVE_RECURSE
  "libsbf_sai.a"
)
