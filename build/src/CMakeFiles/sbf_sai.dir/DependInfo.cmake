
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sai/compact_counter_vector.cc" "src/CMakeFiles/sbf_sai.dir/sai/compact_counter_vector.cc.o" "gcc" "src/CMakeFiles/sbf_sai.dir/sai/compact_counter_vector.cc.o.d"
  "/root/repo/src/sai/counter_vector.cc" "src/CMakeFiles/sbf_sai.dir/sai/counter_vector.cc.o" "gcc" "src/CMakeFiles/sbf_sai.dir/sai/counter_vector.cc.o.d"
  "/root/repo/src/sai/fixed_counter_vector.cc" "src/CMakeFiles/sbf_sai.dir/sai/fixed_counter_vector.cc.o" "gcc" "src/CMakeFiles/sbf_sai.dir/sai/fixed_counter_vector.cc.o.d"
  "/root/repo/src/sai/select_index.cc" "src/CMakeFiles/sbf_sai.dir/sai/select_index.cc.o" "gcc" "src/CMakeFiles/sbf_sai.dir/sai/select_index.cc.o.d"
  "/root/repo/src/sai/serial_scan_counter_vector.cc" "src/CMakeFiles/sbf_sai.dir/sai/serial_scan_counter_vector.cc.o" "gcc" "src/CMakeFiles/sbf_sai.dir/sai/serial_scan_counter_vector.cc.o.d"
  "/root/repo/src/sai/string_array_index.cc" "src/CMakeFiles/sbf_sai.dir/sai/string_array_index.cc.o" "gcc" "src/CMakeFiles/sbf_sai.dir/sai/string_array_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sbf_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
