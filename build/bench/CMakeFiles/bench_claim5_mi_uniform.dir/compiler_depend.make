# Empty compiler generated dependencies file for bench_claim5_mi_uniform.
# This may be replaced when dependencies are built.
