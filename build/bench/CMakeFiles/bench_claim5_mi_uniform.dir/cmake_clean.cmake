file(REMOVE_RECURSE
  "CMakeFiles/bench_claim5_mi_uniform.dir/bench_claim5_mi_uniform.cc.o"
  "CMakeFiles/bench_claim5_mi_uniform.dir/bench_claim5_mi_uniform.cc.o.d"
  "bench_claim5_mi_uniform"
  "bench_claim5_mi_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_claim5_mi_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
