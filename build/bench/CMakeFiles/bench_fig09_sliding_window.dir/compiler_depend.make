# Empty compiler generated dependencies file for bench_fig09_sliding_window.
# This may be replaced when dependencies are built.
