file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_sliding_window.dir/bench_fig09_sliding_window.cc.o"
  "CMakeFiles/bench_fig09_sliding_window.dir/bench_fig09_sliding_window.cc.o.d"
  "bench_fig09_sliding_window"
  "bench_fig09_sliding_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_sliding_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
