file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_sai_breakdown.dir/bench_fig14_sai_breakdown.cc.o"
  "CMakeFiles/bench_fig14_sai_breakdown.dir/bench_fig14_sai_breakdown.cc.o.d"
  "bench_fig14_sai_breakdown"
  "bench_fig14_sai_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_sai_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
