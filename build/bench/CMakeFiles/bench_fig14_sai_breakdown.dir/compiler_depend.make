# Empty compiler generated dependencies file for bench_fig14_sai_breakdown.
# This may be replaced when dependencies are built.
