file(REMOVE_RECURSE
  "CMakeFiles/bench_app_iceberg.dir/bench_app_iceberg.cc.o"
  "CMakeFiles/bench_app_iceberg.dir/bench_app_iceberg.cc.o.d"
  "bench_app_iceberg"
  "bench_app_iceberg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_iceberg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
