# Empty compiler generated dependencies file for bench_app_iceberg.
# This may be replaced when dependencies are built.
