# Empty dependencies file for bench_fig15_storage_vs_hash.
# This may be replaced when dependencies are built.
