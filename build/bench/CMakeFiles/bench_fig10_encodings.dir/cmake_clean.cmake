file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_encodings.dir/bench_fig10_encodings.cc.o"
  "CMakeFiles/bench_fig10_encodings.dir/bench_fig10_encodings.cc.o.d"
  "bench_fig10_encodings"
  "bench_fig10_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
