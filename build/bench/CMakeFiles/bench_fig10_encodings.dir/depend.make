# Empty dependencies file for bench_fig10_encodings.
# This may be replaced when dependencies are built.
