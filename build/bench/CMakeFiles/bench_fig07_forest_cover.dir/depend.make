# Empty dependencies file for bench_fig07_forest_cover.
# This may be replaced when dependencies are built.
