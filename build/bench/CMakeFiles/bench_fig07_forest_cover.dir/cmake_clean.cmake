file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_forest_cover.dir/bench_fig07_forest_cover.cc.o"
  "CMakeFiles/bench_fig07_forest_cover.dir/bench_fig07_forest_cover.cc.o.d"
  "bench_fig07_forest_cover"
  "bench_fig07_forest_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_forest_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
