file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_indexes.dir/bench_ablation_indexes.cc.o"
  "CMakeFiles/bench_ablation_indexes.dir/bench_ablation_indexes.cc.o.d"
  "bench_ablation_indexes"
  "bench_ablation_indexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
