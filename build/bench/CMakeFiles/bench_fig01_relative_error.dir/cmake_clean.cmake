file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_relative_error.dir/bench_fig01_relative_error.cc.o"
  "CMakeFiles/bench_fig01_relative_error.dir/bench_fig01_relative_error.cc.o.d"
  "bench_fig01_relative_error"
  "bench_fig01_relative_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_relative_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
