# Empty dependencies file for bench_fig01_relative_error.
# This may be replaced when dependencies are built.
