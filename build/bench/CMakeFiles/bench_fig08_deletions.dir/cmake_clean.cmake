file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_deletions.dir/bench_fig08_deletions.cc.o"
  "CMakeFiles/bench_fig08_deletions.dir/bench_fig08_deletions.cc.o.d"
  "bench_fig08_deletions"
  "bench_fig08_deletions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_deletions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
