# Empty compiler generated dependencies file for bench_fig08_deletions.
# This may be replaced when dependencies are built.
