# Empty compiler generated dependencies file for bench_table1_rm_error.
# This may be replaced when dependencies are built.
