file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_rm_error.dir/bench_table1_rm_error.cc.o"
  "CMakeFiles/bench_table1_rm_error.dir/bench_table1_rm_error.cc.o.d"
  "bench_table1_rm_error"
  "bench_table1_rm_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_rm_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
