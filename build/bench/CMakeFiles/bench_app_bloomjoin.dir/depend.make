# Empty dependencies file for bench_app_bloomjoin.
# This may be replaced when dependencies are built.
