file(REMOVE_RECURSE
  "CMakeFiles/bench_app_bloomjoin.dir/bench_app_bloomjoin.cc.o"
  "CMakeFiles/bench_app_bloomjoin.dir/bench_app_bloomjoin.cc.o.d"
  "bench_app_bloomjoin"
  "bench_app_bloomjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_bloomjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
