# Empty compiler generated dependencies file for bench_fig13_sai_size.
# This may be replaced when dependencies are built.
