# Empty compiler generated dependencies file for bench_fig06_gamma_sweep.
# This may be replaced when dependencies are built.
