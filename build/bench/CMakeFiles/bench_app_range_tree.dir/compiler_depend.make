# Empty compiler generated dependencies file for bench_app_range_tree.
# This may be replaced when dependencies are built.
