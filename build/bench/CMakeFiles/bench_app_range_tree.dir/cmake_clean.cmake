file(REMOVE_RECURSE
  "CMakeFiles/bench_app_range_tree.dir/bench_app_range_tree.cc.o"
  "CMakeFiles/bench_app_range_tree.dir/bench_app_range_tree.cc.o.d"
  "bench_app_range_tree"
  "bench_app_range_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_range_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
