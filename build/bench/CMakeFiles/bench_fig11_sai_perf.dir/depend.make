# Empty dependencies file for bench_fig11_sai_perf.
# This may be replaced when dependencies are built.
