file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_sai_perf.dir/bench_fig11_sai_perf.cc.o"
  "CMakeFiles/bench_fig11_sai_perf.dir/bench_fig11_sai_perf.cc.o.d"
  "bench_fig11_sai_perf"
  "bench_fig11_sai_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sai_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
