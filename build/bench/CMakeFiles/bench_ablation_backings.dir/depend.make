# Empty dependencies file for bench_ablation_backings.
# This may be replaced when dependencies are built.
