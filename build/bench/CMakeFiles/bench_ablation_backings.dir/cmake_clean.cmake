file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_backings.dir/bench_ablation_backings.cc.o"
  "CMakeFiles/bench_ablation_backings.dir/bench_ablation_backings.cc.o.d"
  "bench_ablation_backings"
  "bench_ablation_backings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_backings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
