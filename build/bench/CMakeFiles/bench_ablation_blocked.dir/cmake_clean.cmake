file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blocked.dir/bench_ablation_blocked.cc.o"
  "CMakeFiles/bench_ablation_blocked.dir/bench_ablation_blocked.cc.o.d"
  "bench_ablation_blocked"
  "bench_ablation_blocked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blocked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
