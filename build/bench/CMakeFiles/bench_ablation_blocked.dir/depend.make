# Empty dependencies file for bench_ablation_blocked.
# This may be replaced when dependencies are built.
