# Empty compiler generated dependencies file for bench_table2_memory_tradeoff.
# This may be replaced when dependencies are built.
