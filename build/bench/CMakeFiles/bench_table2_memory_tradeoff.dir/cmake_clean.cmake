file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_memory_tradeoff.dir/bench_table2_memory_tradeoff.cc.o"
  "CMakeFiles/bench_table2_memory_tradeoff.dir/bench_table2_memory_tradeoff.cc.o.d"
  "bench_table2_memory_tradeoff"
  "bench_table2_memory_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_memory_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
