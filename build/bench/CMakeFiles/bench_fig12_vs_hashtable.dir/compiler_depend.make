# Empty compiler generated dependencies file for bench_fig12_vs_hashtable.
# This may be replaced when dependencies are built.
