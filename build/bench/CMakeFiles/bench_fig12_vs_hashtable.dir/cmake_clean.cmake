file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_vs_hashtable.dir/bench_fig12_vs_hashtable.cc.o"
  "CMakeFiles/bench_fig12_vs_hashtable.dir/bench_fig12_vs_hashtable.cc.o.d"
  "bench_fig12_vs_hashtable"
  "bench_fig12_vs_hashtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vs_hashtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
