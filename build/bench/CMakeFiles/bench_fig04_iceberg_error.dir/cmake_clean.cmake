file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_iceberg_error.dir/bench_fig04_iceberg_error.cc.o"
  "CMakeFiles/bench_fig04_iceberg_error.dir/bench_fig04_iceberg_error.cc.o.d"
  "bench_fig04_iceberg_error"
  "bench_fig04_iceberg_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_iceberg_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
