# Empty compiler generated dependencies file for bench_fig04_iceberg_error.
# This may be replaced when dependencies are built.
