# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iceberg_monitoring "/root/repo/build/examples/iceberg_monitoring")
set_tests_properties(example_iceberg_monitoring PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed_join "/root/repo/build/examples/distributed_join")
set_tests_properties(example_distributed_join PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sliding_window_traffic "/root/repo/build/examples/sliding_window_traffic")
set_tests_properties(example_sliding_window_traffic PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_range_queries "/root/repo/build/examples/range_queries")
set_tests_properties(example_range_queries PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_summary_cache "/root/repo/build/examples/summary_cache")
set_tests_properties(example_summary_cache PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hot_queries "/root/repo/build/examples/hot_queries")
set_tests_properties(example_hot_queries PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sbf_tool "/root/repo/build/examples/sbf_tool")
set_tests_properties(example_sbf_tool PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
