file(REMOVE_RECURSE
  "CMakeFiles/sbf_tool.dir/sbf_tool.cpp.o"
  "CMakeFiles/sbf_tool.dir/sbf_tool.cpp.o.d"
  "sbf_tool"
  "sbf_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
