# Empty compiler generated dependencies file for sbf_tool.
# This may be replaced when dependencies are built.
