# Empty compiler generated dependencies file for range_queries.
# This may be replaced when dependencies are built.
