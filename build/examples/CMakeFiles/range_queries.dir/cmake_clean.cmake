file(REMOVE_RECURSE
  "CMakeFiles/range_queries.dir/range_queries.cpp.o"
  "CMakeFiles/range_queries.dir/range_queries.cpp.o.d"
  "range_queries"
  "range_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
