# Empty dependencies file for sliding_window_traffic.
# This may be replaced when dependencies are built.
