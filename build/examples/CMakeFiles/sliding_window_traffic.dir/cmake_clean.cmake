file(REMOVE_RECURSE
  "CMakeFiles/sliding_window_traffic.dir/sliding_window_traffic.cpp.o"
  "CMakeFiles/sliding_window_traffic.dir/sliding_window_traffic.cpp.o.d"
  "sliding_window_traffic"
  "sliding_window_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_window_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
