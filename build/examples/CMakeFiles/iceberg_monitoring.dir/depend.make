# Empty dependencies file for iceberg_monitoring.
# This may be replaced when dependencies are built.
