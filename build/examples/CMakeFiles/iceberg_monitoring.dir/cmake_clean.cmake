file(REMOVE_RECURSE
  "CMakeFiles/iceberg_monitoring.dir/iceberg_monitoring.cpp.o"
  "CMakeFiles/iceberg_monitoring.dir/iceberg_monitoring.cpp.o.d"
  "iceberg_monitoring"
  "iceberg_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
