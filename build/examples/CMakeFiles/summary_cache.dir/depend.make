# Empty dependencies file for summary_cache.
# This may be replaced when dependencies are built.
