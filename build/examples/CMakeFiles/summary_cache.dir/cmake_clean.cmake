file(REMOVE_RECURSE
  "CMakeFiles/summary_cache.dir/summary_cache.cpp.o"
  "CMakeFiles/summary_cache.dir/summary_cache.cpp.o.d"
  "summary_cache"
  "summary_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
