file(REMOVE_RECURSE
  "CMakeFiles/distributed_join.dir/distributed_join.cpp.o"
  "CMakeFiles/distributed_join.dir/distributed_join.cpp.o.d"
  "distributed_join"
  "distributed_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
