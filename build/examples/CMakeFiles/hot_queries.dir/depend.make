# Empty dependencies file for hot_queries.
# This may be replaced when dependencies are built.
