file(REMOVE_RECURSE
  "CMakeFiles/hot_queries.dir/hot_queries.cpp.o"
  "CMakeFiles/hot_queries.dir/hot_queries.cpp.o.d"
  "hot_queries"
  "hot_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
