file(REMOVE_RECURSE
  "CMakeFiles/counter_vector_test.dir/counter_vector_test.cc.o"
  "CMakeFiles/counter_vector_test.dir/counter_vector_test.cc.o.d"
  "counter_vector_test"
  "counter_vector_test.pdb"
  "counter_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
