# Empty dependencies file for counter_vector_test.
# This may be replaced when dependencies are built.
