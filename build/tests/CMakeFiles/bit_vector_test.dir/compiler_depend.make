# Empty compiler generated dependencies file for bit_vector_test.
# This may be replaced when dependencies are built.
