file(REMOVE_RECURSE
  "CMakeFiles/bit_vector_test.dir/bit_vector_test.cc.o"
  "CMakeFiles/bit_vector_test.dir/bit_vector_test.cc.o.d"
  "bit_vector_test"
  "bit_vector_test.pdb"
  "bit_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bit_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
