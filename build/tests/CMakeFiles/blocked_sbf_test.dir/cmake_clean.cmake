file(REMOVE_RECURSE
  "CMakeFiles/blocked_sbf_test.dir/blocked_sbf_test.cc.o"
  "CMakeFiles/blocked_sbf_test.dir/blocked_sbf_test.cc.o.d"
  "blocked_sbf_test"
  "blocked_sbf_test.pdb"
  "blocked_sbf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocked_sbf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
