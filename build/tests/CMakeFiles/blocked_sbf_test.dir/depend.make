# Empty dependencies file for blocked_sbf_test.
# This may be replaced when dependencies are built.
