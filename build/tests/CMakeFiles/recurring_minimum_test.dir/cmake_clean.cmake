file(REMOVE_RECURSE
  "CMakeFiles/recurring_minimum_test.dir/recurring_minimum_test.cc.o"
  "CMakeFiles/recurring_minimum_test.dir/recurring_minimum_test.cc.o.d"
  "recurring_minimum_test"
  "recurring_minimum_test.pdb"
  "recurring_minimum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurring_minimum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
