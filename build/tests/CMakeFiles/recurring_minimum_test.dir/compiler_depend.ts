# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for recurring_minimum_test.
