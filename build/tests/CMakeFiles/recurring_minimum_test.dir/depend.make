# Empty dependencies file for recurring_minimum_test.
# This may be replaced when dependencies are built.
