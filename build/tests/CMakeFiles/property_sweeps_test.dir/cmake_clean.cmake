file(REMOVE_RECURSE
  "CMakeFiles/property_sweeps_test.dir/property_sweeps_test.cc.o"
  "CMakeFiles/property_sweeps_test.dir/property_sweeps_test.cc.o.d"
  "property_sweeps_test"
  "property_sweeps_test.pdb"
  "property_sweeps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_sweeps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
