file(REMOVE_RECURSE
  "CMakeFiles/bloomjoin_test.dir/bloomjoin_test.cc.o"
  "CMakeFiles/bloomjoin_test.dir/bloomjoin_test.cc.o.d"
  "bloomjoin_test"
  "bloomjoin_test.pdb"
  "bloomjoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloomjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
