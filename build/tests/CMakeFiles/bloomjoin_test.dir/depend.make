# Empty dependencies file for bloomjoin_test.
# This may be replaced when dependencies are built.
