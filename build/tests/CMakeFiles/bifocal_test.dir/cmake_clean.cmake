file(REMOVE_RECURSE
  "CMakeFiles/bifocal_test.dir/bifocal_test.cc.o"
  "CMakeFiles/bifocal_test.dir/bifocal_test.cc.o.d"
  "bifocal_test"
  "bifocal_test.pdb"
  "bifocal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bifocal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
