# Empty compiler generated dependencies file for bifocal_test.
# This may be replaced when dependencies are built.
