# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rank_select_test.
