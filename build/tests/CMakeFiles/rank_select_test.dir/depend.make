# Empty dependencies file for rank_select_test.
# This may be replaced when dependencies are built.
