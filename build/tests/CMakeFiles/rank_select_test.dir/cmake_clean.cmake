file(REMOVE_RECURSE
  "CMakeFiles/rank_select_test.dir/rank_select_test.cc.o"
  "CMakeFiles/rank_select_test.dir/rank_select_test.cc.o.d"
  "rank_select_test"
  "rank_select_test.pdb"
  "rank_select_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_select_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
