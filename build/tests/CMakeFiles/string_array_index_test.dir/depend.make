# Empty dependencies file for string_array_index_test.
# This may be replaced when dependencies are built.
