file(REMOVE_RECURSE
  "CMakeFiles/string_array_index_test.dir/string_array_index_test.cc.o"
  "CMakeFiles/string_array_index_test.dir/string_array_index_test.cc.o.d"
  "string_array_index_test"
  "string_array_index_test.pdb"
  "string_array_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_array_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
