file(REMOVE_RECURSE
  "CMakeFiles/serialization_fuzz_test.dir/serialization_fuzz_test.cc.o"
  "CMakeFiles/serialization_fuzz_test.dir/serialization_fuzz_test.cc.o.d"
  "serialization_fuzz_test"
  "serialization_fuzz_test.pdb"
  "serialization_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialization_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
