# Empty compiler generated dependencies file for serialization_fuzz_test.
# This may be replaced when dependencies are built.
