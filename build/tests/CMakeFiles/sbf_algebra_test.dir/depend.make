# Empty dependencies file for sbf_algebra_test.
# This may be replaced when dependencies are built.
