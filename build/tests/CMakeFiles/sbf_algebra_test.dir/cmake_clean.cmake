file(REMOVE_RECURSE
  "CMakeFiles/sbf_algebra_test.dir/sbf_algebra_test.cc.o"
  "CMakeFiles/sbf_algebra_test.dir/sbf_algebra_test.cc.o.d"
  "sbf_algebra_test"
  "sbf_algebra_test.pdb"
  "sbf_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
