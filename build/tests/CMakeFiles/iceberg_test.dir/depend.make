# Empty dependencies file for iceberg_test.
# This may be replaced when dependencies are built.
