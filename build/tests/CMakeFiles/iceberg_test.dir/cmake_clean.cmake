file(REMOVE_RECURSE
  "CMakeFiles/iceberg_test.dir/iceberg_test.cc.o"
  "CMakeFiles/iceberg_test.dir/iceberg_test.cc.o.d"
  "iceberg_test"
  "iceberg_test.pdb"
  "iceberg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iceberg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
