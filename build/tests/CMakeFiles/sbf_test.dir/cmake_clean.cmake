file(REMOVE_RECURSE
  "CMakeFiles/sbf_test.dir/sbf_test.cc.o"
  "CMakeFiles/sbf_test.dir/sbf_test.cc.o.d"
  "sbf_test"
  "sbf_test.pdb"
  "sbf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
