# Empty dependencies file for sbf_test.
# This may be replaced when dependencies are built.
