file(REMOVE_RECURSE
  "CMakeFiles/trapping_rm_test.dir/trapping_rm_test.cc.o"
  "CMakeFiles/trapping_rm_test.dir/trapping_rm_test.cc.o.d"
  "trapping_rm_test"
  "trapping_rm_test.pdb"
  "trapping_rm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trapping_rm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
