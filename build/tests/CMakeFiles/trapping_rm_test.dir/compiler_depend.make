# Empty compiler generated dependencies file for trapping_rm_test.
# This may be replaced when dependencies are built.
