# Empty dependencies file for aggregate_index_test.
# This may be replaced when dependencies are built.
