file(REMOVE_RECURSE
  "CMakeFiles/aggregate_index_test.dir/aggregate_index_test.cc.o"
  "CMakeFiles/aggregate_index_test.dir/aggregate_index_test.cc.o.d"
  "aggregate_index_test"
  "aggregate_index_test.pdb"
  "aggregate_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
