
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/top_k_test.cc" "tests/CMakeFiles/top_k_test.dir/top_k_test.cc.o" "gcc" "tests/CMakeFiles/top_k_test.dir/top_k_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sbf_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_sai.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_hashing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sbf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
