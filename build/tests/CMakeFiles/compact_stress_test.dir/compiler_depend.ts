# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for compact_stress_test.
