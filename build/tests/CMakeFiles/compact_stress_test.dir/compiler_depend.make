# Empty compiler generated dependencies file for compact_stress_test.
# This may be replaced when dependencies are built.
