file(REMOVE_RECURSE
  "CMakeFiles/compact_stress_test.dir/compact_stress_test.cc.o"
  "CMakeFiles/compact_stress_test.dir/compact_stress_test.cc.o.d"
  "compact_stress_test"
  "compact_stress_test.pdb"
  "compact_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
