# Empty compiler generated dependencies file for sliding_window_test.
# This may be replaced when dependencies are built.
