# Empty compiler generated dependencies file for range_tree_test.
# This may be replaced when dependencies are built.
