file(REMOVE_RECURSE
  "CMakeFiles/range_tree_test.dir/range_tree_test.cc.o"
  "CMakeFiles/range_tree_test.dir/range_tree_test.cc.o.d"
  "range_tree_test"
  "range_tree_test.pdb"
  "range_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
