file(REMOVE_RECURSE
  "CMakeFiles/select_index_test.dir/select_index_test.cc.o"
  "CMakeFiles/select_index_test.dir/select_index_test.cc.o.d"
  "select_index_test"
  "select_index_test.pdb"
  "select_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/select_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
