# Empty dependencies file for select_index_test.
# This may be replaced when dependencies are built.
