// sbf_tool — a small command-line utility around the library, the kind of
// artifact a deployment actually ships:
//
//   sbf_tool build  <filter-file> [m] [k]   build a filter from stdin keys
//                                           (one key per line; repeated
//                                           lines raise the multiplicity)
//   sbf_tool query  <filter-file> <key>...  estimate multiplicities
//   sbf_tool heavy  <filter-file> <T> <key>...
//                                           keys with estimate >= T
//   sbf_tool merge  <out> <in1> <in2>...    union compatible filters
//   sbf_tool info   <filter-file>           parameters and fill statistics
//   sbf_tool health <filter-file>           occupancy, live FPR estimate and
//                                           the HEALTHY/DEGRADED/SATURATED
//                                           verdict (any filter frame)
//   sbf_tool load   <file>                  inspect any wire frame: envelope,
//                                           filter type, round-trip check
//   sbf_tool audit  <file>                  deserialize any frame and run its
//                                           structural validator
//                                           (CheckInvariants); exit 0 iff the
//                                           structure passes
//   sbf_tool storage <file>                 compact-backing internals: used /
//                                           slack / overhead bits, rebuild and
//                                           push tallies, per-group slack
//                                           histogram (bare 'SBcc' frames or
//                                           filters with a compact backing)
//   sbf_tool save   <in> <out>              load any filter frame and save
//                                           its canonical re-serialization
//   sbf_tool recover <dir>                  recover a durable store directory
//                                           (checkpoints + WAL) and report the
//                                           verdict; exit 0 clean, 2 torn tail
//                                           truncated, 3 quarantined/rebuilt,
//                                           4 unrecoverable
//   sbf_tool log-dump <wal>                 per-record WAL metadata: header
//                                           generation, each record's
//                                           sequence/type/keys, torn-tail
//                                           diagnosis (exit 2 when torn)
//
// `build`/`query`/... work on SBF files; `load`/`save` accept *any* filter
// frame (counting Bloom, blocked, RM, TRM, sharded...) via the polymorphic
// wire codec.
//
// Run with no arguments for a self-demo that exercises every subcommand in
// a temp directory (so the example binary stays runnable standalone).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/bloom_filter.h"
#include "core/sbf_algebra.h"
#include "core/spectral_bloom_filter.h"
#include "sai/compact_counter_vector.h"
#include "sai/counter_vector.h"
#include "io/delta_log.h"
#include "io/durable_store.h"
#include "io/filter_codec.h"
#include "io/wire.h"
#include "util/health.h"

namespace {

using sbf::SbfOptions;
using sbf::SpectralBloomFilter;

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

bool ReadFile(const std::string& path, std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  bytes->assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  return true;
}

int Fail(const char* message) {
  std::fprintf(stderr, "sbf_tool: %s\n", message);
  return 1;
}

SpectralBloomFilter Load(const std::string& path, bool* ok) {
  std::vector<uint8_t> bytes;
  *ok = false;
  if (!ReadFile(path, &bytes)) {
    std::fprintf(stderr, "sbf_tool: cannot read %s\n", path.c_str());
    SbfOptions fallback;
    fallback.m = 1;
    fallback.k = 1;
    return SpectralBloomFilter(fallback);
  }
  auto filter = SpectralBloomFilter::Deserialize(bytes);
  if (!filter.ok()) {
    std::fprintf(stderr, "sbf_tool: %s: %s\n", path.c_str(),
                 filter.status().ToString().c_str());
    SbfOptions fallback;
    fallback.m = 1;
    fallback.k = 1;
    return SpectralBloomFilter(fallback);
  }
  *ok = true;
  return std::move(filter).value();
}

int CmdBuild(int argc, char** argv) {
  if (argc < 3) return Fail("build needs an output path");
  SbfOptions options;
  options.m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100000;
  options.k = argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 5;
  options.policy = sbf::SbfPolicy::kMinimumSelection;  // mergeable
  options.backing = sbf::CounterBacking::kCompact;
  SpectralBloomFilter filter(options);

  char line[4096];
  uint64_t lines = 0;
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (len == 0) continue;
    filter.InsertBytes(std::string_view(line, len));
    ++lines;
  }
  if (!WriteFile(argv[2], filter.Serialize())) return Fail("write failed");
  std::printf("built %s: %llu insertions, m=%llu k=%u, %zu bytes on disk\n",
              argv[2], (unsigned long long)lines,
              (unsigned long long)filter.m(), filter.k(),
              filter.Serialize().size());
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 4) return Fail("query needs a filter and at least one key");
  bool ok = false;
  const SpectralBloomFilter filter = Load(argv[2], &ok);
  if (!ok) return 1;
  for (int i = 3; i < argc; ++i) {
    std::printf("%s\t%llu\n", argv[i],
                (unsigned long long)filter.EstimateBytes(argv[i]));
  }
  return 0;
}

int CmdHeavy(int argc, char** argv) {
  if (argc < 5) return Fail("heavy needs a filter, a threshold and keys");
  bool ok = false;
  const SpectralBloomFilter filter = Load(argv[2], &ok);
  if (!ok) return 1;
  const uint64_t threshold = std::strtoull(argv[3], nullptr, 10);
  for (int i = 4; i < argc; ++i) {
    if (filter.EstimateBytes(argv[i]) >= threshold) {
      std::printf("%s\n", argv[i]);
    }
  }
  return 0;
}

int CmdMerge(int argc, char** argv) {
  if (argc < 5) return Fail("merge needs an output and >= 2 inputs");
  bool ok = false;
  SpectralBloomFilter merged = Load(argv[3], &ok);
  if (!ok) return 1;
  for (int i = 4; i < argc; ++i) {
    const SpectralBloomFilter next = Load(argv[i], &ok);
    if (!ok) return 1;
    const sbf::Status status = UnionInto(&merged, next);
    if (!status.ok()) return Fail(status.ToString().c_str());
  }
  if (!WriteFile(argv[2], merged.Serialize())) return Fail("write failed");
  std::printf("merged %d filters into %s (%llu items)\n", argc - 3, argv[2],
              (unsigned long long)merged.total_items());
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 3) return Fail("info needs a filter path");
  bool ok = false;
  const SpectralBloomFilter filter = Load(argv[2], &ok);
  if (!ok) return 1;
  uint64_t nonzero = 0;
  for (uint64_t i = 0; i < filter.m(); ++i) {
    nonzero += filter.counters().Get(i) > 0;
  }
  std::printf("m=%llu k=%u policy=%s items=%llu\n",
              (unsigned long long)filter.m(), filter.k(),
              filter.Name().c_str(),
              (unsigned long long)filter.total_items());
  std::printf("counters nonzero: %llu (%.1f%%), memory %zu KB\n",
              (unsigned long long)nonzero, 100.0 * nonzero / filter.m(),
              filter.MemoryUsageBits() / 8192);
  return 0;
}

int CmdHealth(int argc, char** argv) {
  if (argc < 3) return Fail("health needs a filter path");
  std::vector<uint8_t> bytes;
  if (!ReadFile(argv[2], &bytes)) return Fail("cannot read input");
  auto filter = sbf::DeserializeFilter(bytes);
  if (!filter.ok()) return Fail(filter.status().ToString().c_str());
  const sbf::FilterHealth health = filter.value()->Health();
  std::printf("%s: %s\n", filter.value()->Name().c_str(),
              health.ToString().c_str());
  // A non-zero exit for anything unhealthy makes the command usable as a
  // monitoring probe: 0 healthy, 2 degraded, 3 saturated.
  switch (health.state) {
    case sbf::HealthState::kHealthy:
      return 0;
    case sbf::HealthState::kDegraded:
      return 2;
    case sbf::HealthState::kSaturated:
      return 3;
  }
  return 0;
}

int CmdLoad(int argc, char** argv) {
  if (argc < 3) return Fail("load needs a file path");
  std::vector<uint8_t> bytes;
  if (!ReadFile(argv[2], &bytes)) return Fail("cannot read input");

  const auto envelope = sbf::wire::ProbeFrame(bytes);
  if (!envelope.ok()) return Fail(envelope.status().ToString().c_str());
  const uint32_t magic = envelope.value().magic;
  std::printf("frame: magic '%c%c%c%c' v%u, payload %llu bytes, crc32c %08x\n",
              static_cast<char>(magic), static_cast<char>(magic >> 8),
              static_cast<char>(magic >> 16), static_cast<char>(magic >> 24),
              envelope.value().version,
              (unsigned long long)envelope.value().payload_size,
              envelope.value().crc32c);

  auto filter = sbf::DeserializeFilter(bytes);
  if (!filter.ok()) return Fail(filter.status().ToString().c_str());
  std::printf("filter: %s, %zu KB in memory\n",
              filter.value()->Name().c_str(),
              filter.value()->MemoryUsageBits() / 8192);
  if (filter.value()->Serialize() != bytes) {
    return Fail("re-serialization is not byte-identical");
  }
  std::printf("round-trip: re-serialization byte-identical\n");
  return 0;
}

// Deserializes any library frame — filter frontends, the plain Bloom
// filter, or a bare counter-vector backing — and runs its structural
// validator. This is the always-available entry point of the SBF_AUDIT
// layer (DESIGN.md §7): the validators are compiled into every build, so a
// deployment can vet a frame it received before serving from it.
int CmdAudit(int argc, char** argv) {
  if (argc < 3) return Fail("audit needs a file path");
  std::vector<uint8_t> bytes;
  if (!ReadFile(argv[2], &bytes)) return Fail("cannot read input");

  const uint32_t magic = sbf::wire::PeekMagic(bytes);
  std::string name;
  sbf::Status verdict = sbf::Status::Ok();
  if (magic == sbf::wire::kMagicBloomFilter) {
    auto filter = sbf::BloomFilter::Deserialize(bytes);
    if (!filter.ok()) return Fail(filter.status().ToString().c_str());
    name = "bloom";
    verdict = filter.value().CheckInvariants();
  } else if (magic == sbf::wire::kMagicFixedCounters ||
             magic == sbf::wire::kMagicCompactCounters ||
             magic == sbf::wire::kMagicSerialScanCounters) {
    auto counters = sbf::DeserializeCounterVector(bytes);
    if (!counters.ok()) return Fail(counters.status().ToString().c_str());
    name = counters.value()->Name();
    verdict = counters.value()->CheckInvariants();
  } else {
    auto filter = sbf::DeserializeFilter(bytes);
    if (!filter.ok()) return Fail(filter.status().ToString().c_str());
    name = filter.value()->Name();
    verdict = filter.value()->CheckInvariants();
  }
  if (!verdict.ok()) {
    std::fprintf(stderr, "sbf_tool: audit %s: %s: %s\n", argv[2],
                 name.c_str(), verdict.ToString().c_str());
    return 4;
  }
  std::printf("audit %s: %s: all structural invariants hold\n", argv[2],
              name.c_str());
  return 0;
}

// Dumps the compact backing's storage economics — the N + o(N) + O(m)
// decomposition of Section 4.4 on a live frame. Accepts a bare 'SBcc'
// counter frame or any filter frame whose backing is the compact vector.
// Rebuild/push tallies are process-local, so on a freshly loaded frame they
// report only the load-time layout build (zero for both).
int CmdStorage(int argc, char** argv) {
  if (argc < 3) return Fail("storage needs a file path");
  std::vector<uint8_t> bytes;
  if (!ReadFile(argv[2], &bytes)) return Fail("cannot read input");

  // Keep whichever owner we deserialize alive for the whole dump.
  std::unique_ptr<sbf::CounterVector> bare;
  std::unique_ptr<sbf::FrequencyFilter> filter;
  const sbf::CompactCounterVector* cv = nullptr;
  if (sbf::wire::PeekMagic(bytes) == sbf::wire::kMagicCompactCounters) {
    auto counters = sbf::DeserializeCounterVector(bytes);
    if (!counters.ok()) return Fail(counters.status().ToString().c_str());
    bare = std::move(counters).value();
    cv = dynamic_cast<const sbf::CompactCounterVector*>(bare.get());
  } else {
    auto loaded = sbf::DeserializeFilter(bytes);
    if (!loaded.ok()) return Fail(loaded.status().ToString().c_str());
    filter = std::move(loaded).value();
    if (const auto* sbf_filter =
            dynamic_cast<const SpectralBloomFilter*>(filter.get())) {
      cv = dynamic_cast<const sbf::CompactCounterVector*>(
          &sbf_filter->counters());
    }
  }
  if (cv == nullptr) {
    return Fail("storage needs an 'SBcc' frame or a compact-backed filter");
  }

  const size_t used = cv->UsedBits();
  const size_t base = cv->BaseArrayBits();
  const size_t overhead = cv->OverheadBits();
  std::printf("compact: m=%zu group_size=%zu groups=%zu\n", cv->size(),
              cv->group_size(), cv->group_count());
  std::printf("payload used: %zu bits, base array: %zu bits (slack %zu)\n",
              used, base, base - used);
  std::printf("overhead: %zu bits (offsets, widths, prefix samples)\n",
              overhead);
  std::printf("total: %zu bits = %.2f bits/counter\n", cv->MemoryUsageBits(),
              static_cast<double>(cv->MemoryUsageBits()) / cv->size());
  std::printf("rebuilds: %zu, pushed bits: %llu\n", cv->rebuild_count(),
              (unsigned long long)cv->pushed_bits_total());

  // Slack histogram: how far each group sits from its next forced push.
  size_t min_slack = ~size_t{0}, max_slack = 0;
  uint64_t total_slack = 0;
  for (size_t g = 0; g < cv->group_count(); ++g) {
    const size_t s = cv->GroupSlackBits(g);
    min_slack = std::min(min_slack, s);
    max_slack = std::max(max_slack, s);
    total_slack += s;
  }
  std::printf("group slack bits: min=%zu mean=%.1f max=%zu\n", min_slack,
              static_cast<double>(total_slack) / cv->group_count(),
              max_slack);
  constexpr size_t kBuckets = 8;
  size_t histogram[kBuckets] = {0};
  const size_t bucket_width = max_slack / kBuckets + 1;
  for (size_t g = 0; g < cv->group_count(); ++g) {
    histogram[cv->GroupSlackBits(g) / bucket_width] += 1;
  }
  for (size_t b = 0; b < kBuckets; ++b) {
    std::printf("  slack [%4zu, %4zu): %zu group(s)\n", b * bucket_width,
                (b + 1) * bucket_width, histogram[b]);
  }
  return 0;
}

int CmdSave(int argc, char** argv) {
  if (argc < 4) return Fail("save needs an input and an output path");
  std::vector<uint8_t> bytes;
  if (!ReadFile(argv[2], &bytes)) return Fail("cannot read input");
  auto filter = sbf::DeserializeFilter(bytes);
  if (!filter.ok()) return Fail(filter.status().ToString().c_str());
  const std::vector<uint8_t> canonical = filter.value()->Serialize();
  if (!WriteFile(argv[3], canonical)) return Fail("write failed");
  std::printf("saved %s: %s, %zu bytes\n", argv[3],
              filter.value()->Name().c_str(), canonical.size());
  return 0;
}

// Recovers (and repairs) a durable store directory, reporting the verdict
// with monitoring-probe exit codes like `health`: 0 clean or fresh, 2 a
// torn log tail was truncated, 3 a checkpoint was quarantined or the
// state was rebuilt from logs alone, 4 unrecoverable.
int CmdRecover(int argc, char** argv) {
  if (argc < 3) return Fail("recover needs a store directory");
  sbf::DurableOptions options;
  options.filter.m = 4096;  // only used if the directory is empty
  options.filter.num_shards = 4;
  options.filter.k = 4;
  auto store = sbf::DurableSbf::Open(argv[2], options);
  if (!store.ok()) {
    std::fprintf(stderr, "sbf_tool: recover %s: %s\n", argv[2],
                 store.status().ToString().c_str());
    // FailedPrecondition = not a store directory at all (usage error);
    // DataLoss = a store that cannot be recovered.
    return store.status().code() == sbf::Status::Code::kDataLoss ? 4 : 1;
  }
  const sbf::DurabilityStats stats = store.value()->Stats();
  std::printf("recover %s: %s\n", argv[2], stats.ToString().c_str());
  std::printf("filter: %s\n", store.value()->Health().ToString().c_str());
  switch (stats.recovery) {
    case sbf::RecoveryVerdict::kFreshStart:
    case sbf::RecoveryVerdict::kClean:
      return 0;
    case sbf::RecoveryVerdict::kTornTail:
      return 2;
    case sbf::RecoveryVerdict::kQuarantined:
    case sbf::RecoveryVerdict::kLogOnlyRebuild:
      return 3;
    case sbf::RecoveryVerdict::kUnrecoverable:
      return 4;  // unreachable from a live store; kept for totality
  }
  return 0;
}

// Dumps a WAL file record by record: the header's generation and embedded
// configuration frame, then each record's sequence, type and payload
// shape, then the torn-tail diagnosis. Exit 2 flags a torn tail so the
// command doubles as a probe.
int CmdLogDump(int argc, char** argv) {
  if (argc < 3) return Fail("log-dump needs a WAL path");
  std::vector<uint8_t> bytes;
  if (!ReadFile(argv[2], &bytes)) return Fail("cannot read input");
  auto scanned = sbf::io::ScanLog(bytes);
  if (!scanned.ok()) return Fail(scanned.status().ToString().c_str());
  const sbf::io::LogScan& scan = scanned.value();
  std::printf("wal %s: generation %llu, embedded config frame %zu bytes\n",
              argv[2], (unsigned long long)scan.header.generation,
              scan.header.empty_filter_frame.size());
  for (size_t i = 0; i < scan.records.size(); ++i) {
    const sbf::io::WalRecord& record = scan.records[i];
    if (record.type == sbf::io::WalRecordType::kDeltaBatch) {
      std::printf("  [%3zu] seq=%llu delta-batch %s %zu key(s) x%llu\n", i,
                  (unsigned long long)record.sequence,
                  record.is_remove ? "remove" : "insert", record.keys.size(),
                  (unsigned long long)record.count);
    } else {
      std::printf("  [%3zu] seq=%llu checkpoint-seal next-generation=%llu\n",
                  i, (unsigned long long)record.sequence,
                  (unsigned long long)record.next_generation);
    }
  }
  std::printf("%zu record(s), %llu valid byte(s), %llu ignored\n",
              scan.records.size(), (unsigned long long)scan.valid_bytes,
              (unsigned long long)scan.ignored_bytes);
  if (scan.torn_tail) {
    std::printf("torn tail: %s (clean end-of-log, not corruption)\n",
                scan.tail_reason.c_str());
    return 2;
  }
  return 0;
}

int SelfDemo(const char* binary) {
  std::printf("sbf_tool self-demo (run '%s help' for usage)\n\n", binary);
  const std::string dir = "/tmp/sbf_tool_demo";
  const std::string self(binary);
  int failures = 0;
  auto run = [&failures](const std::string& command) {
    if (std::system(command.c_str()) != 0) ++failures;
  };
  run("mkdir -p " + dir);

  // Two "sites" build filters over their own logs, then merge.
  run("printf 'alice\\nbob\\nalice\\ncarol\\n' | " + self + " build " + dir +
      "/site1.sbf 4096 4");
  run("printf 'alice\\ndave\\n' | " + self + " build " + dir +
      "/site2.sbf 4096 4");
  run(self + " merge " + dir + "/all.sbf " + dir + "/site1.sbf " + dir +
      "/site2.sbf");
  run(self + " query " + dir + "/all.sbf alice bob carol dave erin");
  run(self + " heavy " + dir + "/all.sbf 2 alice bob carol dave");
  run(self + " info " + dir + "/all.sbf");
  run(self + " health " + dir + "/all.sbf");

  // The generic wire path: inspect the frame, re-save its canonical bytes,
  // and confirm the copy is identical.
  run(self + " load " + dir + "/all.sbf");
  run(self + " audit " + dir + "/all.sbf");
  run(self + " storage " + dir + "/all.sbf");
  run(self + " save " + dir + "/all.sbf " + dir + "/all.copy.sbf");
  run("cmp -s " + dir + "/all.sbf " + dir + "/all.copy.sbf");

  // Durability: stand up a checkpoint+WAL store, survive a "restart", and
  // inspect it with the recovery tooling.
  const std::string store_dir = dir + "/store";
  run("rm -rf " + store_dir);
  {
    sbf::DurableOptions options;
    options.filter.m = 4096;
    options.filter.k = 4;
    options.filter.num_shards = 4;
    auto store = sbf::DurableSbf::Open(store_dir, options);
    if (store.ok()) {
      for (uint64_t key = 0; key < 32; ++key) {
        if (!store.value()->Insert(key, 1 + key % 3).ok()) ++failures;
      }
      if (!store.value()->Checkpoint().ok()) ++failures;
      if (!store.value()->Insert(999, 7).ok()) ++failures;
    } else {
      ++failures;
    }
  }
  run(self + " recover " + store_dir);
  run(self + " log-dump " + store_dir + "/wal-1.log");

  if (failures > 0) {
    std::fprintf(stderr, "self-demo: %d command(s) failed\n", failures);
    return 1;
  }
  std::printf("\nself-demo: all subcommands passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return SelfDemo(argv[0]);
  if (std::strcmp(argv[1], "build") == 0) return CmdBuild(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return CmdQuery(argc, argv);
  if (std::strcmp(argv[1], "heavy") == 0) return CmdHeavy(argc, argv);
  if (std::strcmp(argv[1], "merge") == 0) return CmdMerge(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return CmdInfo(argc, argv);
  if (std::strcmp(argv[1], "health") == 0) return CmdHealth(argc, argv);
  if (std::strcmp(argv[1], "load") == 0) return CmdLoad(argc, argv);
  if (std::strcmp(argv[1], "audit") == 0) return CmdAudit(argc, argv);
  if (std::strcmp(argv[1], "storage") == 0) return CmdStorage(argc, argv);
  if (std::strcmp(argv[1], "save") == 0) return CmdSave(argc, argv);
  if (std::strcmp(argv[1], "recover") == 0) return CmdRecover(argc, argv);
  if (std::strcmp(argv[1], "log-dump") == 0) return CmdLogDump(argc, argv);
  std::printf(
      "usage: %s build <out> [m] [k] < keys\n"
      "       %s query <filter> <key>...\n"
      "       %s heavy <filter> <threshold> <key>...\n"
      "       %s merge <out> <in1> <in2>...\n"
      "       %s info  <filter>\n"
      "       %s health <filter>   (exit 0 healthy / 2 degraded / 3 saturated)\n"
      "       %s load  <file>\n"
      "       %s audit <file>      (exit 0 iff structural invariants hold)\n"
      "       %s storage <file>    (compact-backing storage internals)\n"
      "       %s save  <in> <out>\n"
      "       %s recover <dir>     (exit 0 clean / 2 torn tail / 3 rebuilt "
      "/ 4 unrecoverable)\n"
      "       %s log-dump <wal>    (per-record WAL metadata; exit 2 torn)\n",
      argv[0], argv[0], argv[0], argv[0], argv[0], argv[0], argv[0], argv[0],
      argv[0], argv[0], argv[0], argv[0]);
  return std::strcmp(argv[1], "help") == 0 ? 0 : 1;
}
