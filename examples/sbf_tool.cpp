// sbf_tool — a small command-line utility around the library, the kind of
// artifact a deployment actually ships:
//
//   sbf_tool build  <filter-file> [m] [k]   build a filter from stdin keys
//                                           (one key per line; repeated
//                                           lines raise the multiplicity)
//   sbf_tool query  <filter-file> <key>...  estimate multiplicities
//   sbf_tool heavy  <filter-file> <T> <key>...
//                                           keys with estimate >= T
//   sbf_tool merge  <out> <in1> <in2>...    union compatible filters
//   sbf_tool info   <filter-file>           parameters and fill statistics
//
// Run with no arguments for a self-demo that exercises every subcommand in
// a temp directory (so the example binary stays runnable standalone).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/sbf_algebra.h"
#include "core/spectral_bloom_filter.h"

namespace {

using sbf::SbfOptions;
using sbf::SpectralBloomFilter;

bool WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

bool ReadFile(const std::string& path, std::vector<uint8_t>* bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  bytes->assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  return true;
}

int Fail(const char* message) {
  std::fprintf(stderr, "sbf_tool: %s\n", message);
  return 1;
}

SpectralBloomFilter Load(const std::string& path, bool* ok) {
  std::vector<uint8_t> bytes;
  *ok = false;
  if (!ReadFile(path, &bytes)) {
    std::fprintf(stderr, "sbf_tool: cannot read %s\n", path.c_str());
    SbfOptions fallback;
    fallback.m = 1;
    fallback.k = 1;
    return SpectralBloomFilter(fallback);
  }
  auto filter = SpectralBloomFilter::Deserialize(bytes);
  if (!filter.ok()) {
    std::fprintf(stderr, "sbf_tool: %s: %s\n", path.c_str(),
                 filter.status().ToString().c_str());
    SbfOptions fallback;
    fallback.m = 1;
    fallback.k = 1;
    return SpectralBloomFilter(fallback);
  }
  *ok = true;
  return std::move(filter).value();
}

int CmdBuild(int argc, char** argv) {
  if (argc < 3) return Fail("build needs an output path");
  SbfOptions options;
  options.m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 100000;
  options.k = argc > 4 ? static_cast<uint32_t>(std::atoi(argv[4])) : 5;
  options.policy = sbf::SbfPolicy::kMinimumSelection;  // mergeable
  options.backing = sbf::CounterBacking::kCompact;
  SpectralBloomFilter filter(options);

  char line[4096];
  uint64_t lines = 0;
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (len == 0) continue;
    filter.InsertBytes(std::string_view(line, len));
    ++lines;
  }
  if (!WriteFile(argv[2], filter.Serialize())) return Fail("write failed");
  std::printf("built %s: %llu insertions, m=%llu k=%u, %zu bytes on disk\n",
              argv[2], (unsigned long long)lines,
              (unsigned long long)filter.m(), filter.k(),
              filter.Serialize().size());
  return 0;
}

int CmdQuery(int argc, char** argv) {
  if (argc < 4) return Fail("query needs a filter and at least one key");
  bool ok = false;
  const SpectralBloomFilter filter = Load(argv[2], &ok);
  if (!ok) return 1;
  for (int i = 3; i < argc; ++i) {
    std::printf("%s\t%llu\n", argv[i],
                (unsigned long long)filter.EstimateBytes(argv[i]));
  }
  return 0;
}

int CmdHeavy(int argc, char** argv) {
  if (argc < 5) return Fail("heavy needs a filter, a threshold and keys");
  bool ok = false;
  const SpectralBloomFilter filter = Load(argv[2], &ok);
  if (!ok) return 1;
  const uint64_t threshold = std::strtoull(argv[3], nullptr, 10);
  for (int i = 4; i < argc; ++i) {
    if (filter.EstimateBytes(argv[i]) >= threshold) {
      std::printf("%s\n", argv[i]);
    }
  }
  return 0;
}

int CmdMerge(int argc, char** argv) {
  if (argc < 5) return Fail("merge needs an output and >= 2 inputs");
  bool ok = false;
  SpectralBloomFilter merged = Load(argv[3], &ok);
  if (!ok) return 1;
  for (int i = 4; i < argc; ++i) {
    const SpectralBloomFilter next = Load(argv[i], &ok);
    if (!ok) return 1;
    const sbf::Status status = UnionInto(&merged, next);
    if (!status.ok()) return Fail(status.ToString().c_str());
  }
  if (!WriteFile(argv[2], merged.Serialize())) return Fail("write failed");
  std::printf("merged %d filters into %s (%llu items)\n", argc - 3, argv[2],
              (unsigned long long)merged.total_items());
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 3) return Fail("info needs a filter path");
  bool ok = false;
  const SpectralBloomFilter filter = Load(argv[2], &ok);
  if (!ok) return 1;
  uint64_t nonzero = 0;
  for (uint64_t i = 0; i < filter.m(); ++i) {
    nonzero += filter.counters().Get(i) > 0;
  }
  std::printf("m=%llu k=%u policy=%s items=%llu\n",
              (unsigned long long)filter.m(), filter.k(),
              filter.Name().c_str(),
              (unsigned long long)filter.total_items());
  std::printf("counters nonzero: %llu (%.1f%%), memory %zu KB\n",
              (unsigned long long)nonzero, 100.0 * nonzero / filter.m(),
              filter.MemoryUsageBits() / 8192);
  return 0;
}

int SelfDemo(const char* binary) {
  std::printf("sbf_tool self-demo (run '%s help' for usage)\n\n", binary);
  const std::string dir = "/tmp/sbf_tool_demo";
  std::system(("mkdir -p " + dir).c_str());

  // Two "sites" build filters over their own logs, then merge.
  std::system(("printf 'alice\\nbob\\nalice\\ncarol\\n' | " +
               std::string(binary) + " build " + dir + "/site1.sbf 4096 4")
                  .c_str());
  std::system(("printf 'alice\\ndave\\n' | " + std::string(binary) +
               " build " + dir + "/site2.sbf 4096 4")
                  .c_str());
  std::system((std::string(binary) + " merge " + dir + "/all.sbf " + dir +
               "/site1.sbf " + dir + "/site2.sbf")
                  .c_str());
  std::system((std::string(binary) + " query " + dir +
               "/all.sbf alice bob carol dave erin")
                  .c_str());
  std::system((std::string(binary) + " heavy " + dir +
               "/all.sbf 2 alice bob carol dave")
                  .c_str());
  std::system((std::string(binary) + " info " + dir + "/all.sbf").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return SelfDemo(argv[0]);
  if (std::strcmp(argv[1], "build") == 0) return CmdBuild(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return CmdQuery(argc, argv);
  if (std::strcmp(argv[1], "heavy") == 0) return CmdHeavy(argc, argv);
  if (std::strcmp(argv[1], "merge") == 0) return CmdMerge(argc, argv);
  if (std::strcmp(argv[1], "info") == 0) return CmdInfo(argc, argv);
  std::printf(
      "usage: %s build <out> [m] [k] < keys\n"
      "       %s query <filter> <key>...\n"
      "       %s heavy <filter> <threshold> <key>...\n"
      "       %s merge <out> <in1> <in2>...\n"
      "       %s info  <filter>\n",
      argv[0], argv[0], argv[0], argv[0], argv[0]);
  return std::strcmp(argv[1], "help") == 0 ? 0 : 1;
}
