// Spectral Bloomjoin (paper Section 5.3): two database sites answer
//
//   SELECT customers.id, count(*) FROM customers, orders
//   WHERE customers.id = orders.customer GROUP BY customers.id
//   HAVING count(*) >= 50
//
// with a single site-to-site message: the orders site serializes its SBF
// over the join attribute; the customers site multiplies it with its own
// SBF and scans locally. Compare the network bill against shipping the
// orders table or running a classic Bloomjoin.

#include <cstdio>

#include "db/bloomjoin.h"
#include "io/wire.h"
#include "util/random.h"

int main() {
  sbf::Relation customers("customers");
  sbf::Relation orders("orders");
  for (uint64_t id = 1; id <= 2000; ++id) customers.Add(id, id);
  sbf::Xoshiro256 rng(2026);
  for (uint64_t order = 0; order < 100000; ++order) {
    // 70% of orders reference known customers; the rest are foreign.
    const uint64_t customer = rng.UniformDouble() < 0.7
                                  ? rng.UniformInt(2000) + 1
                                  : 100000 + rng.UniformInt(3000);
    orders.Add(customer, order);
  }

  const auto ship_all = sbf::ShipAllJoin(customers, orders);
  const auto classic = sbf::ClassicBloomjoin(customers, orders, 16000, 5, 7);
  const auto spectral =
      sbf::SpectralBloomjoin(customers, orders, 36000, 5, 50, 7);
  const auto verified =
      sbf::VerifiedSpectralBloomjoin(customers, orders, 36000, 5, 50, 7);

  auto report = [](const char* name, const sbf::DistributedJoinResult& r) {
    std::printf(
        "%-18s %8llu bytes  %u round(s)  %5zu groups  (%llu false, %llu "
        "missed)\n",
        name, (unsigned long long)r.network.bytes_sent, r.network.rounds,
        r.groups.size(), (unsigned long long)r.false_groups,
        (unsigned long long)r.missed_groups);
  };
  report("ship-all", ship_all);
  report("classic bloomjoin", classic);
  report("spectral (1 msg)", spectral);
  report("spectral+verify", verified);

  std::printf(
      "\nspectral join sent %.1f%% of the ship-all bytes in one round;\n"
      "errors are one-sided and the verify pass removes them for %.1f%% "
      "extra traffic.\n",
      100.0 * spectral.network.bytes_sent / ship_all.network.bytes_sent,
      100.0 *
          (verified.network.bytes_sent - spectral.network.bytes_sent) /
          spectral.network.bytes_sent);

  // The single message above is a real wire frame. Ship the orders
  // partition once more and re-open it the way the customers site does.
  const std::vector<uint8_t> frame = sbf::ShipPartition(orders, 36000, 5, 7);
  const auto envelope = sbf::wire::ProbeFrame(frame);
  const auto partition = sbf::ReceivePartition(frame);
  if (!envelope.ok() || !partition.ok()) {
    std::fprintf(stderr, "partition round-trip failed\n");
    return 1;
  }
  std::printf(
      "\nwire frame: magic 'SBjp' v%u, %llu payload bytes, crc32c %08x\n"
      "received partition: relation '%s', %llu tuples, filter %s "
      "(%llu items)\n",
      envelope.value().version,
      (unsigned long long)envelope.value().payload_size,
      envelope.value().crc32c, partition.value().relation.c_str(),
      (unsigned long long)partition.value().tuples,
      partition.value().filter.Name().c_str(),
      (unsigned long long)partition.value().filter.total_items());
  return 0;
}
