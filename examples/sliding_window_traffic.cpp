// Sliding-window flow tracking (the network-measurement scenario of the
// paper's introduction, Section 1.1.4): keep per-flow packet counts for
// the most recent window of traffic only. The Recurring Minimum SBF
// supports the required deletions without the false negatives that break
// Minimal Increase here — demonstrated side by side.

#include <cstdio>
#include <deque>
#include <memory>
#include <unordered_map>

#include "core/recurring_minimum.h"
#include "core/sliding_window.h"
#include "core/spectral_bloom_filter.h"
#include "workload/multiset_stream.h"

namespace {

struct Outcome {
  size_t false_negatives = 0;
  size_t overestimates = 0;
};

Outcome RunWindow(std::unique_ptr<sbf::FrequencyFilter> filter,
                  const sbf::Multiset& traffic, size_t window_size) {
  sbf::SlidingWindowFilter window(std::move(filter), window_size);
  std::unordered_map<uint64_t, uint64_t> live;
  std::deque<uint64_t> reference;
  for (uint64_t flow : traffic.stream) {
    window.Push(flow);
    reference.push_back(flow);
    ++live[flow];
    while (reference.size() > window_size) {
      --live[reference.front()];
      reference.pop_front();
    }
  }
  Outcome outcome;
  for (const auto& [flow, packets] : live) {
    const uint64_t estimate = window.Estimate(flow);
    outcome.false_negatives += (estimate < packets);
    outcome.overestimates += (estimate > packets);
  }
  return outcome;
}

}  // namespace

int main() {
  // 2000 flows, 200k packets, heavy-tailed; window = last 40k packets.
  const sbf::Multiset traffic = sbf::MakeZipfMultiset(2000, 200000, 1.0, 7);
  constexpr size_t kWindow = 40000;

  sbf::RecurringMinimumOptions rm_options;
  rm_options.primary_m = 12000;
  rm_options.secondary_m = 3000;
  rm_options.k = 5;
  rm_options.backing = sbf::CounterBacking::kCompact;
  // The marker filter B_f pins down which items live in the secondary,
  // closing the marker-less variant's residual false-negative window
  // under heavy deletion churn (Section 3.3's refinement).
  rm_options.use_marker_filter = true;
  const Outcome rm = RunWindow(
      std::make_unique<sbf::RecurringMinimumSbf>(rm_options), traffic,
      kWindow);

  sbf::SbfOptions mi_options;
  mi_options.m = 15000;
  mi_options.k = 5;
  mi_options.policy = sbf::SbfPolicy::kMinimalIncrease;
  mi_options.backing = sbf::CounterBacking::kCompact;
  const Outcome mi = RunWindow(
      std::make_unique<sbf::SpectralBloomFilter>(mi_options), traffic,
      kWindow);

  std::printf("window = last %zu packets, 2000 flows, equal memory\n\n",
              kWindow);
  std::printf("Recurring Minimum: %zu false negatives, %zu overestimates\n",
              rm.false_negatives, rm.overestimates);
  std::printf("Minimal Increase : %zu false negatives, %zu overestimates\n",
              mi.false_negatives, mi.overestimates);
  std::printf(
      "\nMI cannot follow the expiring window (Section 3.2); RM keeps the "
      "one-sided\nguarantee that makes 'flow f sent >= T packets recently' "
      "trustworthy.\n");
  return 0;
}
