// Ad-hoc iceberg monitoring (paper Section 5.2's motivating scenario):
// a stream of customer-support contacts flows by; an analyst wants alerts
// for customers whose contact count crosses a threshold — but the
// threshold is business-driven and changes at query time, so methods that
// preprocess for one fixed threshold (MULTISCAN et al.) would have to
// rescan data that is already gone.
//
// The SBF-backed IcebergEngine ingests the stream once and answers any
// threshold afterwards, with one-sided (false-positive-only) error.

#include <cstdio>
#include <set>

#include "db/iceberg.h"
#include "workload/multiset_stream.h"

int main() {
  // Synthetic contact stream: 5000 customers, 300k contacts, Zipfian
  // (a few customers contact support constantly).
  const sbf::Multiset stream = sbf::MakeZipfMultiset(5000, 300000, 1.2, 99);

  sbf::SbfOptions options;
  options.m = 36000;  // gamma ~ 0.7
  options.k = 5;
  options.backing = sbf::CounterBacking::kCompact;
  sbf::IcebergEngine engine(options);

  // Live trigger while the stream flows: alert the first time a customer
  // crosses 200 contacts.
  size_t alerts = 0;
  for (uint64_t customer : stream.stream) {
    if (engine.Observe(customer, /*trigger_threshold=*/200) &&
        engine.Estimate(customer) == 200) {
      ++alerts;  // first crossing only
    }
  }
  std::printf("live alerts at threshold 200: %zu\n", alerts);

  // The analyst now explores thresholds ad hoc — no rescan, the stream is
  // long gone.
  for (uint64_t threshold : {500ull, 150ull, 60ull}) {
    const auto heavy = engine.Query(stream.keys, threshold);
    size_t truly = 0;
    for (uint64_t f : stream.freqs) truly += (f >= threshold);
    std::printf(
        "threshold %4llu: reported %4zu customers (%zu truly heavy, "
        "%zu false positives, 0 missed by construction)\n",
        (unsigned long long)threshold, heavy.size(), truly,
        heavy.size() - truly);
  }
  std::printf("engine memory: %zu KB for %llu contacts\n",
              engine.MemoryUsageBits() / 8192,
              (unsigned long long)stream.total());
  return 0;
}
