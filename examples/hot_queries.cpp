// Hot-query tracking (the paper's Section 1.1.2 application: identifying
// popular search queries a la Alta-Vista [Bro02, GM98]): a TopKTracker
// keeps the k most frequent stream items in bounded memory — an SBF for
// counts over the whole stream plus a small exact candidate list.

#include <cstdio>

#include "db/top_k.h"
#include "workload/multiset_stream.h"

int main() {
  // A day of search traffic: 50k distinct queries, 2M submissions,
  // heavily skewed (a handful of queries dominate).
  const sbf::Multiset traffic = sbf::MakeZipfMultiset(50000, 2000000, 1.1, 8);

  sbf::SbfOptions options;
  options.m = 360000;  // gamma ~ 0.7
  options.k = 5;
  options.backing = sbf::CounterBacking::kCompact;
  sbf::TopKTracker tracker(10, options);
  for (uint64_t query : traffic.stream) tracker.Observe(query);

  std::printf("top 10 queries by estimated frequency (true rank = key):\n");
  for (const auto& entry : tracker.Top()) {
    const uint64_t truth = traffic.freqs[entry.key - 1];
    std::printf("  query #%-6llu  ~%7llu submissions  (true %7llu)\n",
                (unsigned long long)entry.key,
                (unsigned long long)entry.estimate,
                (unsigned long long)truth);
  }
  std::printf(
      "\ntracker memory: %zu KB for a 2M-submission stream over 50k "
      "queries\n",
      tracker.MemoryUsageBits() / 8192);
  return 0;
}
