// Summary Cache (the paper's Section 1.1.1, after [FCAB98]): a cluster of
// web proxies periodically exchange Bloom filters summarizing their cache
// contents. A proxy receiving a miss consults the summaries before
// forwarding, avoiding useless inter-proxy probes; the one-sided error
// means a "no" from a summary is always right.

#include <cstdio>
#include <string>
#include <vector>

#include "core/bloom_filter.h"
#include "util/random.h"

namespace {

constexpr uint64_t kUrlUniverse = 200000;
constexpr int kProxies = 4;
constexpr int kUrlsPerProxy = 10000;

}  // namespace

int main() {
  sbf::Xoshiro256 rng(0xCAC4Eull);

  // Each proxy caches a random set of URLs and summarizes it (same filter
  // parameters everywhere so summaries are interchangeable messages).
  std::vector<std::vector<uint64_t>> caches(kProxies);
  std::vector<std::vector<uint8_t>> messages;
  for (int p = 0; p < kProxies; ++p) {
    sbf::BloomFilter summary(8 * kUrlsPerProxy, 5, /*seed=*/99);
    for (int i = 0; i < kUrlsPerProxy; ++i) {
      const uint64_t url = rng.UniformInt(kUrlUniverse);
      caches[p].push_back(url);
      summary.Add(url);
    }
    messages.push_back(summary.Serialize());  // broadcast to the cluster
  }
  std::printf("each proxy ships a %zu KB summary of %d cached URLs\n\n",
              messages[0].size() / 1024, kUrlsPerProxy);

  // Proxy 0 receives the other proxies' summaries.
  std::vector<sbf::BloomFilter> summaries;
  for (int p = 1; p < kProxies; ++p) {
    auto restored = sbf::BloomFilter::Deserialize(messages[p]);
    summaries.push_back(std::move(restored).value());
  }

  // Simulate local misses at proxy 0: consult summaries instead of probing
  // every peer.
  int probes_saved = 0, useful_probes = 0, wasted_probes = 0;
  constexpr int kMisses = 20000;
  for (int i = 0; i < kMisses; ++i) {
    const uint64_t url = rng.UniformInt(kUrlUniverse);
    for (int p = 1; p < kProxies; ++p) {
      if (!summaries[p - 1].Contains(url)) {
        ++probes_saved;  // certain miss: no network probe needed
        continue;
      }
      bool actually_cached = false;
      for (uint64_t cached : caches[p]) {
        if (cached == url) {
          actually_cached = true;
          break;
        }
      }
      if (actually_cached) {
        ++useful_probes;
      } else {
        ++wasted_probes;  // summary false positive
      }
    }
  }
  const int total = probes_saved + useful_probes + wasted_probes;
  std::printf("of %d potential inter-proxy probes:\n", total);
  std::printf("  avoided (certain miss)   : %6d (%.1f%%)\n", probes_saved,
              100.0 * probes_saved / total);
  std::printf("  useful (hit at the peer) : %6d\n", useful_probes);
  std::printf("  wasted (false positive)  : %6d (%.2f%% of probes)\n",
              wasted_probes, 100.0 * wasted_probes / total);
  return 0;
}
