// Range queries over an SBF (paper Section 5.5): Range Tree Hashing makes
//
//   SELECT count(a) FROM R WHERE a > L AND a < U
//
// answerable in O(log |range|) SBF lookups with a *guaranteed* one-sided
// error per query — something histograms cannot promise, since they must
// extrapolate inside partially covered buckets.

#include <cstdio>

#include "db/range_tree.h"
#include "util/random.h"

int main() {
  // Attribute domain: product prices in cents, 0 .. 65535.
  constexpr uint64_t kDomain = 65536;
  sbf::SbfOptions options;
  options.m = 2000000;  // n log r synthetic items live here (Claim 12)
  options.k = 5;
  options.backing = sbf::CounterBacking::kCompact;
  sbf::RangeTreeSbf prices(kDomain, options);

  // Ingest 50,000 sales with a bimodal price distribution.
  sbf::Xoshiro256 rng(4242);
  uint64_t cheap = 0, premium = 0;
  for (int sale = 0; sale < 50000; ++sale) {
    uint64_t price;
    if (rng.UniformDouble() < 0.7) {
      price = 500 + rng.UniformInt(2000);  // $5 - $25
      ++cheap;
    } else {
      price = 20000 + rng.UniformInt(10000);  // $200 - $300
      ++premium;
    }
    prices.Insert(price);
  }

  struct Query {
    const char* label;
    uint64_t lo, hi;
  };
  const Query queries[] = {
      {"under $25      ", 0, 2500},
      {"$25 - $200     ", 2500, 20000},
      {"$200 - $300    ", 20000, 30001},
      {"over $300      ", 30001, kDomain},
      {"exactly $9.99  ", 999, 1000},
  };
  std::printf("sales: %llu cheap, %llu premium (50000 total)\n\n",
              (unsigned long long)cheap, (unsigned long long)premium);
  for (const Query& query : queries) {
    const auto estimate = prices.EstimateRange(query.lo, query.hi);
    std::printf("%s ~ %6llu sales   (%u SBF probes, <= 2 log|range| = %d)\n",
                query.label, (unsigned long long)estimate.count,
                estimate.probes,
                2 * (64 - __builtin_clzll(query.hi - query.lo)));
  }
  std::printf("\nindex memory: %zu KB; every count is >= the true count\n",
              prices.MemoryUsageBits() / 8192);
  return 0;
}
