// Quickstart: the Spectral Bloom Filter in five minutes.
//
// An SBF answers "how many times did I see x?" over a multiset using a
// fraction of the memory of an exact map, with one-sided errors: the
// estimate never undercounts, and overcounts happen with a small, tunable
// probability (the classic Bloom error).
//
// Build & run:  ./examples/quickstart

#include <cstdio>

#include "core/spectral_bloom_filter.h"

int main() {
  // Filter sized for ~1000 distinct keys at gamma = nk/m ~ 0.7 (the
  // error-optimal operating point): m = n*k/0.7.
  sbf::SbfOptions options;
  options.m = 7150;                                // counters
  options.k = 5;                                   // hash functions
  options.policy = sbf::SbfPolicy::kMinimalIncrease;  // most accurate
  options.backing = sbf::CounterBacking::kCompact;    // N + o(N) + O(m) bits
  sbf::SpectralBloomFilter filter(options);

  // Count word-like events. Any uint64 key works; strings go through
  // InsertBytes which fingerprints them first.
  filter.InsertBytes("apple");
  filter.InsertBytes("apple");
  filter.InsertBytes("banana", 41);  // bulk insert: 41 occurrences
  for (uint64_t user = 0; user < 1000; ++user) {
    filter.Insert(user, user % 7 + 1);
  }

  std::printf("apple   ~ %llu (true 2)\n",
              (unsigned long long)filter.EstimateBytes("apple"));
  std::printf("banana  ~ %llu (true 41)\n",
              (unsigned long long)filter.EstimateBytes("banana"));
  std::printf("cherry  ~ %llu (true 0)\n",
              (unsigned long long)filter.EstimateBytes("cherry"));

  // Spectral membership: is user 13 a heavy hitter (>= 5 occurrences)?
  // One-sided: a "no" is always correct; a "yes" is wrong with
  // probability ~ (1 - e^-gamma)^k.
  std::printf("user 13 >= 5 occurrences? %s\n",
              filter.Contains(13, 5) ? "yes" : "no");

  // The filter is a compact, shippable synopsis.
  const auto message = filter.Serialize();
  std::printf("memory: %zu KB, serialized: %zu KB\n",
              filter.MemoryUsageBits() / 8192, message.size() / 1024);

  auto restored = sbf::SpectralBloomFilter::Deserialize(message);
  std::printf("deserialized apple ~ %llu\n",
              (unsigned long long)restored.value().EstimateBytes("apple"));
  return 0;
}
